"""Network serving tier: the engine behind a real socket.

Everything below this package is transport-agnostic — the serve layer's
:class:`~repro.serve.server.Server` batches and dispatches coroutines
in-process. This package puts a wire on it:

* :mod:`repro.net.frame` — length-prefixed, CRC-protected binary frames;
  batch payloads reuse the shared-memory lane's packed numeric-array
  encoding, so a batch crosses the socket the same way it crosses a
  process boundary.
* :mod:`repro.net.server` — the asyncio TCP adapter
  (:class:`NetServer`, :func:`serve_tcp`): every connection feeds the
  same request batcher, with per-connection backpressure, graceful
  drain, and typed error frames.
* :mod:`repro.net.client` — :class:`AsyncNetClient` / sync
  :class:`NetClient` with connection pooling, request pipelining,
  timeouts, and bounded retry for idempotent reads.
* :mod:`repro.net.router` — :class:`Router`: key-range scatter/gather
  over N backend servers, with health-probe ejection and re-admission.
* :mod:`repro.net.boot` — :class:`TcpCluster`: spawn the N backend
  processes a router fronts.

The usual entry points are config-driven:
``open_server(..., listen="host:port")`` (or
:func:`~repro.net.server.serve_tcp`) on the server side and
:func:`~repro.net.client.connect` on the client side.
"""

from repro.net.boot import TcpCluster, run_backend
from repro.net.client import AsyncNetClient, NetClient, connect
from repro.net.errors import (
    BackendDownError,
    ConnectionLostError,
    FrameCorruptError,
    FrameError,
    NetError,
    RemoteError,
    RequestTimeoutError,
)
from repro.net.frame import (
    Frame,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.net.router import Router
from repro.net.server import NetServer, serve_tcp

__all__ = [
    "AsyncNetClient",
    "BackendDownError",
    "ConnectionLostError",
    "Frame",
    "FrameCorruptError",
    "FrameError",
    "NetClient",
    "NetError",
    "NetServer",
    "RemoteError",
    "RequestTimeoutError",
    "Router",
    "TcpCluster",
    "connect",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "run_backend",
    "serve_tcp",
]
