"""Typed failures of the network serving tier.

The wire protocol distinguishes three failure families:

* **Application errors** — the engine or serve layer rejected the request
  (``KeyNotFoundError``, ``ServerOverloadedError``, ...). These cross the
  socket as typed error frames and are re-raised client-side as the same
  class (see :mod:`repro.net.frame`); they are *not* defined here.
* **Transport errors** — the connection or the frame stream itself failed.
  Those are the classes below: they mean the bytes never arrived, arrived
  corrupted, or the peer vanished, and say nothing about engine state.
* **Routing errors** — a :class:`~repro.net.router.Router` could not reach
  the backend owning a key range (:class:`BackendDownError`).

All derive from :class:`repro.core.errors.ReproError` so package-wide
``except ReproError`` handlers keep working.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = [
    "NetError",
    "FrameError",
    "FrameCorruptError",
    "ConnectionLostError",
    "RequestTimeoutError",
    "BackendDownError",
    "RemoteError",
]


class NetError(ReproError, RuntimeError):
    """Base class for network-tier transport and routing failures."""


class FrameError(NetError, ValueError):
    """The byte stream is not a valid frame stream (bad magic, an
    unsupported protocol version, or an over-limit frame length).

    Unlike :class:`FrameCorruptError` the stream position after this
    error is unknown, so the connection must be torn down.
    """


class FrameCorruptError(FrameError):
    """One frame's body failed its CRC check.

    The length prefix was intact, so the reader consumed exactly one
    frame and the stream stays synchronized — the connection survives and
    only the damaged frame is lost. Servers answer it with a typed error
    frame (request id 0, since the body was unreadable).
    """


class ConnectionLostError(NetError, ConnectionError):
    """The TCP connection died while requests were in flight.

    Raised for every request pending on the dead connection. Reads may be
    retried safely (the client does so automatically, bounded, with
    backoff); writes may or may not have been applied — callers must
    re-check, mirroring :class:`repro.cluster.errors.WorkerCrashedError`
    semantics.
    """


class RequestTimeoutError(NetError, TimeoutError):
    """No reply frame arrived within the client's per-request timeout.

    The request may still complete on the server after the deadline, so
    only idempotent operations (reads) are retried automatically.
    """


class BackendDownError(NetError):
    """The router has ejected the backend owning this key's range.

    Carries ``address`` (``(host, port)``) and ``backend`` (its index in
    the router's backend list). Requests routed to healthy backends keep
    completing; this range stays unavailable until a health probe
    re-admits the backend.
    """

    def __init__(self, backend: int, address, detail: str = "") -> None:
        self.backend = backend
        self.address = tuple(address)
        message = f"backend {backend} at {self.address} is down"
        if detail:
            message += f": {detail}"
        super().__init__(message)


class RemoteError(NetError):
    """The server reported an exception type this client cannot map.

    Carries ``remote_type`` (the server-side class name) and the remote
    message; raised when an error frame names a class outside the typed
    registry in :mod:`repro.net.frame`.
    """

    def __init__(self, remote_type: str, message: str) -> None:
        self.remote_type = remote_type
        super().__init__(f"{remote_type}: {message}")
