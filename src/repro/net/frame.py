"""Length-prefixed CRC'd binary framing for the TCP serving tier.

One frame on the wire is::

    +-------+----------+---------+------------------------------------+
    | magic | body_len |  crc32  |               body                 |
    |  u16  |   u32    |   u32   |  (body_len bytes, crc32 of these)  |
    +-------+----------+---------+------------------------------------+

    body := | version u8 | kind u8 | codec u8 | flags u8 | request_id u64 |
            | payload ... |

The 10-byte prefix is framing only; everything semantic — including the
version byte, so the protocol can evolve without touching the prefix —
lives inside the CRC-protected body. A bad magic or over-limit length
means the stream is garbage (:class:`~repro.net.errors.FrameError`, fatal
to the connection); a CRC mismatch means exactly one frame was damaged
(:class:`~repro.net.errors.FrameCorruptError`) and the stream stays
synchronized because the length prefix still framed it.

Payload codecs:

* ``CODEC_ARRAYS`` — the batch fast path. A small JSON ``meta`` dict (op
  parameters, trace context) followed by a descriptor table and the raw
  array bytes, packed back-to-back at 16-byte-aligned offsets — the exact
  layout rule of the shm lanes (:func:`repro.cluster.shm.aligned_offset`),
  with the same ``(dtype.str, length, offset)`` descriptors, so a batch of
  query keys crosses the socket the way it already crosses the process
  boundary: no pickling, decoded as zero-copy (read-only) NumPy views
  over the received buffer.
* ``CODEC_JSON`` — meta only, for scalar ops and control frames.
* ``CODEC_PICKLE`` — the fallback for payloads with no flat numeric form
  (object values, arbitrary defaults). Slower, never wrong. Frames are
  only exchanged between this package's own client and server over links
  the operator already trusts (the same trust model as the cluster
  layer's pickled control frames).

Errors cross the wire as ``REPLY_ERR`` frames carrying the exception's
class name, message, and salient attributes; :func:`decode_error` rebuilds
the same typed exception client-side from a registry of known classes
(unknown names degrade to :class:`~repro.net.errors.RemoteError`).
"""

from __future__ import annotations

import json
import pickle
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cluster.errors import (
    ClusterError,
    WorkerCrashedError,
    WorkerRecoveredError,
)
from repro.cluster.shm import aligned_offset
from repro.core import errors as core_errors
from repro.net.errors import FrameCorruptError, FrameError, RemoteError
from repro.serve.errors import ServerClosedError, ServerOverloadedError

__all__ = [
    "Frame",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "OP_PING",
    "OP_GET",
    "OP_RANGE",
    "OP_INSERT",
    "OP_DELETE",
    "OP_GET_BATCH",
    "OP_RANGE_BATCH",
    "OP_INSERT_BATCH",
    "OP_DELETE_BATCH",
    "OP_STATS",
    "REPLY_OK",
    "REPLY_ERR",
    "KIND_NAMES",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "encode_error",
    "decode_error",
    "encode_result",
    "decode_result",
]

#: Protocol version stamped into (and checked from) every frame body.
PROTOCOL_VERSION = 1

#: Hard upper bound on one frame's body, a defense against a corrupted
#: or hostile length prefix allocating unbounded memory.
MAX_FRAME_BYTES = 64 << 20

_MAGIC = 0xF17E  # "FITing-tree" over Ethernet.
_PREFIX = struct.Struct("<HII")  # magic, body_len, crc32(body)
_BODY_HEADER = struct.Struct("<BBBBQ")  # version, kind, codec, flags, rid
_DESC = struct.Struct("<BQQ")  # dtype-string length, element count, offset

# Request kinds (client -> server).
OP_PING = 1
OP_GET = 2
OP_RANGE = 3
OP_INSERT = 4
OP_DELETE = 5
OP_GET_BATCH = 6
OP_RANGE_BATCH = 7
OP_INSERT_BATCH = 8
OP_DELETE_BATCH = 9
OP_STATS = 10

# Reply kinds (server -> client).
REPLY_OK = 64
REPLY_ERR = 65

#: Human-readable name per frame kind (stats labels, error messages).
KIND_NAMES = {
    OP_PING: "ping",
    OP_GET: "get",
    OP_RANGE: "range",
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_GET_BATCH: "get_batch",
    OP_RANGE_BATCH: "range_batch",
    OP_INSERT_BATCH: "insert_batch",
    OP_DELETE_BATCH: "delete_batch",
    OP_STATS: "stats",
    REPLY_OK: "ok",
    REPLY_ERR: "error",
}

CODEC_JSON = 0
CODEC_ARRAYS = 1
CODEC_PICKLE = 2


@dataclass
class Frame:
    """One decoded frame: kind, request id, and its (meta, arrays) payload."""

    kind: int
    request_id: int
    meta: Dict[str, Any] = field(default_factory=dict)
    arrays: List[np.ndarray] = field(default_factory=list)
    flags: int = 0
    codec: int = CODEC_JSON
    #: On-wire size (prefix + body); set by :func:`read_frame`, 0 for
    #: frames built locally.
    wire_bytes: int = 0

    @property
    def name(self) -> str:
        """The frame kind as a label (``"get"``, ``"ok"``, ...)."""
        return KIND_NAMES.get(self.kind, f"kind{self.kind}")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _encode_arrays_payload(
    meta: Dict[str, Any], arrays: Sequence[np.ndarray]
) -> bytes:
    """The ``CODEC_ARRAYS`` payload: JSON meta + lane-style packed arrays.

    Raises ``ValueError``/``TypeError`` when an array has an object dtype
    or the meta is not JSON-able — callers fall back to pickle.
    """
    meta_b = json.dumps(meta, separators=(",", ":")).encode()
    flat: List[np.ndarray] = []
    descs: List[Tuple[bytes, int, int]] = []
    offset = 0
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        if arr.dtype == np.dtype(object):
            raise ValueError("object dtype has no wire representation")
        if arr.ndim != 1:
            arr = arr.ravel()
        dtype_b = arr.dtype.str.encode("ascii")
        offset = aligned_offset(offset)
        descs.append((dtype_b, arr.size, offset))
        offset += arr.nbytes
        flat.append(arr)
    out = bytearray()
    out += struct.pack("<I", len(meta_b))
    out += meta_b
    out += struct.pack("<H", len(flat))
    for dtype_b, count, off in descs:
        out += _DESC.pack(len(dtype_b), count, off)
        out += dtype_b
    data_base = len(out)
    out += bytes(offset)  # zeroed data region (padding stays zero)
    for arr, (_, _, off) in zip(flat, descs):
        start = data_base + off
        out[start:start + arr.nbytes] = arr.tobytes()
    return bytes(out)


def encode_frame(
    kind: int,
    request_id: int,
    meta: Optional[Dict[str, Any]] = None,
    arrays: Optional[Sequence[np.ndarray]] = None,
    *,
    flags: int = 0,
) -> bytes:
    """Encode one complete wire frame (prefix included).

    Parameters
    ----------
    kind:
        One of the ``OP_*`` / ``REPLY_*`` constants.
    request_id:
        The pipelining correlation id (0 for unmatchable frames).
    meta:
        JSON-able operation parameters / reply metadata. Values that do
        not serialize as JSON demote the whole payload to pickle.
    arrays:
        Numeric 1-D arrays to ship in the lane-style packed section;
        object dtypes demote the payload to pickle.
    flags:
        Reserved bit field (currently always 0 on the wire).

    Returns
    -------
    bytes
        The frame, ready to write to a socket.
    """
    meta = meta or {}
    arrays = list(arrays) if arrays else []
    try:
        if arrays:
            codec = CODEC_ARRAYS
            payload = _encode_arrays_payload(meta, arrays)
        else:
            codec = CODEC_JSON
            payload = json.dumps(meta, separators=(",", ":")).encode()
    except (TypeError, ValueError):
        codec = CODEC_PICKLE
        payload = pickle.dumps((meta, arrays), protocol=pickle.HIGHEST_PROTOCOL)
    body = _BODY_HEADER.pack(
        PROTOCOL_VERSION, kind, codec, flags, request_id
    ) + payload
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _PREFIX.pack(_MAGIC, len(body), zlib.crc32(body)) + body


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _decode_arrays_payload(
    body: bytes, start: int
) -> Tuple[Dict[str, Any], List[np.ndarray]]:
    meta_len = struct.unpack_from("<I", body, start)[0]
    pos = start + 4
    meta = json.loads(bytes(body[pos:pos + meta_len]).decode())
    pos += meta_len
    n_arrays = struct.unpack_from("<H", body, pos)[0]
    pos += 2
    descs = []
    for _ in range(n_arrays):
        dlen, count, off = _DESC.unpack_from(body, pos)
        pos += _DESC.size
        dtype = np.dtype(bytes(body[pos:pos + dlen]).decode("ascii"))
        pos += dlen
        descs.append((dtype, count, off))
    data_base = pos
    arrays = [
        np.frombuffer(body, dtype=dtype, count=count, offset=data_base + off)
        for dtype, count, off in descs
    ]
    return meta, arrays


def decode_frame(body: bytes) -> Frame:
    """Decode one CRC-verified frame body into a :class:`Frame`.

    The arrays come back as zero-copy views over ``body`` (read-only when
    ``body`` is a ``bytes`` object); copy before mutating.
    """
    if len(body) < _BODY_HEADER.size:
        raise FrameError(f"frame body of {len(body)} bytes is truncated")
    version, kind, codec, flags, request_id = _BODY_HEADER.unpack_from(body, 0)
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported protocol version {version} "
            f"(this side speaks {PROTOCOL_VERSION})"
        )
    start = _BODY_HEADER.size
    try:
        if codec == CODEC_JSON:
            meta, arrays = json.loads(bytes(body[start:]).decode() or "{}"), []
        elif codec == CODEC_ARRAYS:
            meta, arrays = _decode_arrays_payload(body, start)
        elif codec == CODEC_PICKLE:
            meta, arrays = pickle.loads(bytes(body[start:]))
        else:
            raise FrameError(f"unknown payload codec {codec}")
    except FrameError:
        raise
    except Exception as exc:
        raise FrameError(f"undecodable {KIND_NAMES.get(kind, kind)} "
                         f"payload: {exc!r}") from exc
    return Frame(kind=kind, request_id=request_id, meta=meta,
                 arrays=list(arrays), flags=flags, codec=codec)


async def read_frame(reader, *, max_bytes: int = MAX_FRAME_BYTES) -> Frame:
    """Read and decode exactly one frame from an asyncio stream reader.

    Parameters
    ----------
    reader:
        An ``asyncio.StreamReader`` positioned at a frame boundary.
    max_bytes:
        Reject bodies longer than this before allocating.

    Returns
    -------
    Frame
        The decoded frame.

    Raises
    ------
    asyncio.IncompleteReadError
        EOF mid-frame (peer disconnected); the partial bytes are lost.
    FrameCorruptError
        CRC mismatch — the stream is still synchronized, keep reading.
    FrameError
        Bad magic / length / version — the stream is unusable.
    """
    prefix = await reader.readexactly(_PREFIX.size)
    magic, body_len, crc = _PREFIX.unpack(prefix)
    if magic != _MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:04x}")
    if not _BODY_HEADER.size <= body_len <= max_bytes:
        raise FrameError(f"frame body length {body_len} out of bounds")
    body = await reader.readexactly(body_len)
    if zlib.crc32(body) != crc:
        raise FrameCorruptError(
            f"frame CRC mismatch over {body_len} body bytes"
        )
    frame = decode_frame(body)
    frame.wire_bytes = _PREFIX.size + body_len
    return frame


# ----------------------------------------------------------------------
# Result payloads
# ----------------------------------------------------------------------


def encode_result(value: Any) -> Tuple[Dict[str, Any], List[np.ndarray]]:
    """Classify a reply value into the ``(meta, arrays)`` frame payload.

    Numeric arrays, ``(keys, values)`` pairs and lists of pairs (the
    ``range_batch`` shape) take the lane-style array path; JSON-safe
    scalars ride the meta dict; anything else is embedded raw in the meta
    so the frame encoder's pickle fallback carries it.

    Parameters
    ----------
    value:
        The operation result to ship.

    Returns
    -------
    tuple
        ``(meta, arrays)`` for :func:`encode_frame`.
    """
    if value is None:
        return {"r": "none"}, []
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, (bool, int, float, str)):
        return {"r": "py", "v": value}, []
    if isinstance(value, np.ndarray):
        if value.dtype != np.dtype(object):
            return {"r": "arr"}, [value]
        return {"r": "obj", "v": value}, []
    if (
        isinstance(value, tuple)
        and len(value) == 2
        and all(
            isinstance(a, np.ndarray) and a.dtype != np.dtype(object)
            for a in value
        )
    ):
        return {"r": "pair"}, [value[0], value[1]]
    if isinstance(value, list) and value and all(
        isinstance(p, tuple) and len(p) == 2
        and all(
            isinstance(a, np.ndarray) and a.dtype != np.dtype(object)
            for a in p
        )
        for p in value
    ):
        flat: List[np.ndarray] = []
        for k, v in value:
            flat.append(k)
            flat.append(v)
        return {"r": "pairs", "n": len(value)}, flat
    return {"r": "obj", "v": value}, []


def decode_result(frame: Frame) -> Any:
    """The reply value a ``REPLY_OK`` frame carries (see
    :func:`encode_result`).

    Parameters
    ----------
    frame:
        A decoded ``REPLY_OK`` frame.

    Returns
    -------
    Any
        The reconstructed operation result.
    """
    meta, arrays = frame.meta, frame.arrays
    shape = meta.get("r")
    if shape == "none":
        return None
    if shape in ("py", "obj"):
        return meta["v"]
    if shape == "arr":
        return arrays[0]
    if shape == "pair":
        return (arrays[0], arrays[1])
    if shape == "pairs":
        n = int(meta["n"])
        return [(arrays[2 * i], arrays[2 * i + 1]) for i in range(n)]
    raise FrameError(f"unknown result shape {shape!r}")


# ----------------------------------------------------------------------
# Typed errors across the wire
# ----------------------------------------------------------------------


def _from_args(cls):
    return lambda args, attrs: cls(*args)


#: Known exception classes, by name, with their reconstruction recipes.
_ERROR_TYPES = {
    cls.__name__: _from_args(cls)
    for cls in (
        core_errors.InvalidParameterError,
        core_errors.NotSortedError,
        core_errors.EmptyIndexError,
        core_errors.KeyNotFoundError,
        core_errors.SegmentationError,
        core_errors.InvariantViolationError,
        ServerClosedError,
        ServerOverloadedError,
        ClusterError,
    )
}
_ERROR_TYPES["WorkerCrashedError"] = lambda args, attrs: WorkerCrashedError(
    int(attrs.get("shard", -1)), attrs.get("exitcode")
)
_ERROR_TYPES["WorkerRecoveredError"] = lambda args, attrs: WorkerRecoveredError(
    int(attrs.get("shard", -1))
)


def _json_safe_args(exc: BaseException) -> Optional[List[Any]]:
    try:
        json.dumps(exc.args)
    except (TypeError, ValueError):
        return None
    return list(exc.args)


def encode_error(request_id: int, exc: BaseException) -> bytes:
    """Encode an exception as a ``REPLY_ERR`` frame.

    Ships the class name, the stringified message, JSON-safe constructor
    args when available, and the attributes the typed registry needs to
    rebuild cluster errors (``shard``, ``exitcode``).
    """
    attrs: Dict[str, Any] = {}
    for name in ("shard", "exitcode", "applied"):
        if hasattr(exc, name):
            value = getattr(exc, name)
            if value is None or isinstance(value, (bool, int, float, str)):
                attrs[name] = value
    meta = {
        "error": type(exc).__name__,
        "message": str(exc),
        "args": _json_safe_args(exc),
        "attrs": attrs,
    }
    return encode_frame(REPLY_ERR, request_id, meta)


def decode_error(frame: Frame) -> BaseException:
    """Rebuild the typed exception a ``REPLY_ERR`` frame describes.

    Known classes come back as themselves (so ``except KeyNotFoundError``
    works across the socket); unknown names become
    :class:`~repro.net.errors.RemoteError`.
    """
    meta = frame.meta
    name = str(meta.get("error", "Exception"))
    message = str(meta.get("message", ""))
    ctor = _ERROR_TYPES.get(name)
    if ctor is None:
        return RemoteError(name, message)
    args = meta.get("args")
    attrs = meta.get("attrs") or {}
    try:
        exc = ctor(args if args is not None else [message], attrs)
    except Exception:
        return RemoteError(name, message)
    return exc
