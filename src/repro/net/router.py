"""Key-range router: one front-end fanning out over N backend servers.

The same geometry that shards an engine shards a fleet: the router holds
``len(backends) - 1`` strictly increasing *cut keys* (typically from
:func:`repro.engine.partition.partition_cuts` over the build dataset) and
backend ``i`` owns keys in ``[cuts[i-1], cuts[i])`` — the exact
``searchsorted`` routing rule of
:func:`repro.engine.partition.route`, so a key lands on the same shard
whether the shard is an in-process index or a TCP server.

Verbs:

* point ops (``get``/``insert``/``delete``) route to the owning backend;
* batch ops split the batch per backend with one ``searchsorted`` and
  scatter the sub-batches concurrently, gathering results back into the
  caller's original order;
* range ops scatter to every backend whose range overlaps and stitch the
  per-backend pieces in key order (backends are range-ordered, so
  concatenation in backend order is already sorted) — the scatter/gather
  that makes ``range_batch`` fan out.

Health: a background probe pings every backend each ``health_interval``;
a failed probe (or an in-flight transport failure) *ejects* the backend —
its key range fails fast with
:class:`~repro.net.errors.BackendDownError` while every other range keeps
serving — and a later successful probe *re-admits* it. Nothing is
re-routed: ranges are ownership, not replicas.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.net.client import AsyncNetClient
from repro.net.errors import (
    BackendDownError,
    ConnectionLostError,
    RequestTimeoutError,
)

__all__ = ["Router"]


class Router:
    """Scatter/gather front-end over range-partitioned backend servers.

    Exposes the same verb surface as :class:`~repro.net.client.AsyncNetClient`,
    so traffic drivers run unchanged against one server or a fleet.

    Parameters
    ----------
    backends:
        ``(host, port)`` of each backend server, ordered by key range.
    cuts:
        ``len(backends) - 1`` strictly increasing cut keys; backend ``i``
        owns ``[cuts[i-1], cuts[i])`` (unbounded at the ends).
    health_interval:
        Seconds between background health probes (``0`` disables the
        task; :meth:`check_health` can still be called directly).
    health_timeout:
        Per-probe deadline.
    telemetry:
        Forwarded to every backend client (tracing modes stitch
        cross-socket span trees).
    **client_kwargs:
        Forwarded to each :class:`~repro.net.client.AsyncNetClient`
        (``pool``, ``timeout``, ``retries``, ...).
    """

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        cuts: Sequence[float],
        *,
        health_interval: float = 0.25,
        health_timeout: float = 1.0,
        telemetry: Any = None,
        **client_kwargs: Any,
    ) -> None:
        if not backends:
            raise InvalidParameterError("router needs at least one backend")
        self._backends = [(str(h), int(p)) for h, p in backends]
        self._cuts = np.asarray(cuts, dtype=np.float64)
        if self._cuts.size != len(self._backends) - 1:
            raise InvalidParameterError(
                f"{len(self._backends)} backends need "
                f"{len(self._backends) - 1} cuts, got {self._cuts.size}"
            )
        if self._cuts.size > 1 and np.any(np.diff(self._cuts) <= 0):
            raise InvalidParameterError("cuts must be strictly increasing")
        self.health_interval = float(health_interval)
        self.health_timeout = float(health_timeout)
        self._clients = [
            AsyncNetClient(h, p, telemetry=telemetry, **client_kwargs)
            for h, p in self._backends
        ]
        self._up = [True] * len(self._backends)
        self._health_task: Optional[asyncio.Task] = None
        self._closed = False
        self._counters = {
            "requests": 0,
            "scatter_legs": 0,
            "ejections": 0,
            "readmissions": 0,
            "backend_errors": 0,
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "Router":
        """Dial every backend and start the health-probe task.

        Returns
        -------
        Router
            ``self``, serving (``async with Router(...)`` does this).
        """
        await asyncio.gather(*[c.connect() for c in self._clients])
        if self.health_interval > 0 and self._health_task is None:
            self._health_task = asyncio.get_running_loop().create_task(
                self._health_loop()
            )
        return self

    async def close(self) -> None:
        """Stop the health task and close every backend client."""
        self._closed = True
        if self._health_task is not None:
            self._health_task.cancel()
            self._health_task = None
        await asyncio.gather(
            *[c.close() for c in self._clients], return_exceptions=True
        )

    async def __aenter__(self) -> "Router":
        return await self.start()

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------

    async def _health_loop(self) -> None:
        while True:
            await asyncio.sleep(self.health_interval)
            await self.check_health()

    async def check_health(self) -> List[bool]:
        """Probe every backend once; eject the dead, re-admit the cured.

        Returns
        -------
        list of bool
            The post-probe up/down state per backend.
        """
        for idx, client in enumerate(self._clients):
            try:
                await asyncio.wait_for(client.ping(), self.health_timeout)
            except asyncio.CancelledError:
                raise
            except Exception:
                self._eject(idx, "health probe failed")
            else:
                if not self._up[idx]:
                    self._up[idx] = True
                    self._counters["readmissions"] += 1
        return list(self._up)

    def _eject(self, idx: int, detail: str) -> None:
        if self._up[idx]:
            self._up[idx] = False
            self._counters["ejections"] += 1

    # ------------------------------------------------------------------
    # Routing geometry
    # ------------------------------------------------------------------

    def _owner(self, key: float) -> int:
        return int(np.searchsorted(self._cuts, float(key), side="right"))

    def _overlapping(self, lo: float, hi: float) -> range:
        first = int(np.searchsorted(self._cuts, float(lo), side="right"))
        last = int(np.searchsorted(self._cuts, float(hi), side="right"))
        return range(first, last + 1)

    async def _leg(self, idx: int, factory) -> Any:
        """Run one backend call with typed down-conversion."""
        if not self._up[idx]:
            raise BackendDownError(idx, self._backends[idx],
                                   "ejected by health check")
        self._counters["scatter_legs"] += 1
        try:
            return await factory()
        except (ConnectionLostError, RequestTimeoutError) as exc:
            self._counters["backend_errors"] += 1
            self._eject(idx, repr(exc))
            raise BackendDownError(
                idx, self._backends[idx], f"request failed: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # Scalar verbs
    # ------------------------------------------------------------------

    async def ping(self) -> Dict[str, Any]:
        """Ping every live backend; returns ``{"pong": True, "pids": [...]}``."""
        self._counters["requests"] += 1
        replies = await asyncio.gather(*[
            self._leg(i, self._clients[i].ping)
            for i in range(len(self._clients))
            if self._up[i]
        ])
        return {"pong": True, "pids": [r.get("pid") for r in replies]}

    async def get(self, key: float, default: Any = None) -> Any:
        """Point lookup on the backend owning ``key``'s range."""
        self._counters["requests"] += 1
        idx = self._owner(key)
        return await self._leg(
            idx, lambda: self._clients[idx].get(key, default)
        )

    async def insert(self, key: float, value: Any = None) -> Any:
        """Insert on the backend owning ``key``'s range."""
        self._counters["requests"] += 1
        idx = self._owner(key)
        return await self._leg(
            idx, lambda: self._clients[idx].insert(key, value)
        )

    async def delete(self, key: float) -> Any:
        """Delete on the backend owning ``key``'s range."""
        self._counters["requests"] += 1
        idx = self._owner(key)
        return await self._leg(idx, lambda: self._clients[idx].delete(key))

    async def range(self, lo: float, hi: float):
        """Range scan stitched across every overlapping backend."""
        self._counters["requests"] += 1
        idxs = list(self._overlapping(lo, hi))
        pieces = await asyncio.gather(*[
            self._leg(i, lambda i=i: self._clients[i].range(lo, hi))
            for i in idxs
        ])
        if len(pieces) == 1:
            return pieces[0]
        return (
            np.concatenate([k for k, _ in pieces]),
            np.concatenate([v for _, v in pieces]),
        )

    # ------------------------------------------------------------------
    # Batch verbs (scatter/gather)
    # ------------------------------------------------------------------

    @staticmethod
    def _gather(n: int, fills) -> np.ndarray:
        """Reassemble per-backend results into caller order.

        ``fills`` is ``[(positions, values), ...]``; the output dtype is
        the common sub-result dtype when they agree (the numeric fast
        path) and ``object`` otherwise.
        """
        dtypes = {np.asarray(v).dtype for _, v in fills if len(v)}
        if len(dtypes) == 1 and np.dtype(object) not in dtypes:
            out = np.empty(n, dtype=dtypes.pop())
        else:
            out = np.empty(n, dtype=object)
        for positions, values in fills:
            out[positions] = np.asarray(values)
        return out

    def _split(self, keys) -> List[Tuple[int, np.ndarray]]:
        """``(backend, positions)`` for each non-empty sub-batch."""
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        owners = np.searchsorted(self._cuts, keys, side="right")
        return [
            (idx, np.flatnonzero(owners == idx))
            for idx in range(len(self._backends))
            if np.any(owners == idx)
        ]

    async def get_batch(self, queries, default: Any = None):
        """Scatter a lookup batch per owning backend; gather in order.

        Parameters
        ----------
        queries:
            Array-like of keys to look up.
        default:
            Value reported for absent keys.

        Returns
        -------
        numpy.ndarray
            One value per query, in query order — identical to a single
            engine's ``get_batch`` over the union dataset.
        """
        self._counters["requests"] += 1
        queries = np.ascontiguousarray(queries, dtype=np.float64)
        parts = self._split(queries)
        results = await asyncio.gather(*[
            self._leg(
                idx,
                lambda idx=idx, pos=pos: self._clients[idx].get_batch(
                    queries[pos], default
                ),
            )
            for idx, pos in parts
        ])
        return self._gather(
            queries.size, [(pos, r) for (_, pos), r in zip(parts, results)]
        )

    async def range_batch(self, bounds):
        """Scatter range rows to overlapping backends; stitch per row.

        Parameters
        ----------
        bounds:
            Array-like of shape ``(n, 2)``: inclusive ``[lo, hi]`` rows.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            One ``(keys, values)`` pair per row, stitched across
            backends in key order.
        """
        self._counters["requests"] += 1
        bounds = np.ascontiguousarray(bounds, dtype=np.float64).reshape(-1, 2)
        # Rows each backend overlaps, preserving row identity.
        per_backend: Dict[int, List[int]] = {}
        for row, (lo, hi) in enumerate(bounds):
            for idx in self._overlapping(lo, hi):
                per_backend.setdefault(idx, []).append(row)
        items = sorted(per_backend.items())
        results = await asyncio.gather(*[
            self._leg(
                idx,
                lambda idx=idx, rows=rows: self._clients[idx].range_batch(
                    bounds[rows]
                ),
            )
            for idx, rows in items
        ])
        pieces: Dict[int, List[Tuple[np.ndarray, np.ndarray]]] = {
            row: [] for row in range(bounds.shape[0])
        }
        for (idx, rows), pairs in zip(items, results):
            for row, pair in zip(rows, pairs):
                pieces[row].append(pair)  # backend order == key order
        out: List[Tuple[np.ndarray, np.ndarray]] = []
        for row in range(bounds.shape[0]):
            parts = pieces[row]
            if len(parts) == 1:
                out.append(parts[0])
            else:
                out.append((
                    np.concatenate([k for k, _ in parts]),
                    np.concatenate([v for _, v in parts]),
                ))
        return out

    async def insert_batch(self, keys, values=None) -> None:
        """Scatter a bulk insert per owning backend.

        Parameters
        ----------
        keys:
            Array-like of keys to insert.
        values:
            Optional numeric payloads aligned with ``keys``.
        """
        self._counters["requests"] += 1
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        vals = (
            None if values is None else np.ascontiguousarray(values)
        )
        parts = self._split(keys)
        await asyncio.gather(*[
            self._leg(
                idx,
                lambda idx=idx, pos=pos: self._clients[idx].insert_batch(
                    keys[pos], None if vals is None else vals[pos]
                ),
            )
            for idx, pos in parts
        ])

    async def delete_batch(self, keys):
        """Scatter a bulk delete per owning backend; gather the values.

        Parameters
        ----------
        keys:
            Array-like of keys to delete (one occurrence each).

        Returns
        -------
        numpy.ndarray
            The deleted values, in the caller's key order.
        """
        self._counters["requests"] += 1
        keys = np.ascontiguousarray(keys, dtype=np.float64)
        parts = self._split(keys)
        results = await asyncio.gather(*[
            self._leg(
                idx,
                lambda idx=idx, pos=pos: self._clients[idx].delete_batch(
                    keys[pos]
                ),
            )
            for idx, pos in parts
        ])
        return self._gather(
            keys.size, [(pos, r) for (_, pos), r in zip(parts, results)]
        )

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Router counters plus per-backend health and client stats.

        Returns
        -------
        dict
            Request/scatter/ejection counters under their own keys and
            one ``{address, up, client}`` record per backend.
        """
        return {
            **self._counters,
            "cuts": self._cuts.tolist(),
            "backends": [
                {
                    "address": list(self._backends[i]),
                    "up": self._up[i],
                    "client": self._clients[i].stats(),
                }
                for i in range(len(self._backends))
            ],
        }
