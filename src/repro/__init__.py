"""FITing-Tree (A-Tree) reproduction: a data-aware bounded-approximate index.

This package is a from-scratch Python implementation of

    Galakatos, Markovitch, Binnig, Fonseca, Kraska.
    "FITing-Tree: A Data-aware Index Structure" (SIGMOD 2019) /
    "A-Tree: A Bounded Approximate Index Structure" (arXiv:1801.10207).

Quickstart
----------
>>> import numpy as np
>>> from repro import FITingTree
>>> keys = np.sort(np.random.default_rng(7).uniform(0, 1e9, 1_000_000))
>>> index = FITingTree(keys, error=256)
>>> int(index.get(keys[123]))     # -> 123 (row id)
123
>>> index.n_segments < 50_000     # orders of magnitude fewer entries than keys
True

The serving stack is opened through the :mod:`repro.api` layer — one
declarative config constructs any backend behind one protocol:

>>> from repro import EngineConfig, open_engine
>>> engine = open_engine(keys, executor="sharded", n_shards=4)
>>> int(engine.get_batch(keys[:8])[3])
3
>>> engine.insert_batch([1.5, 2.5]); engine.delete_batch([1.5]).size
1

Beyond the paper, :mod:`repro.engine` layers a serving system on top: a
:class:`~repro.engine.ShardedEngine` range-partitions the key space into
shards (one FITing-Tree each) and answers whole query batches through
flattened NumPy views of the segments — one ``searchsorted`` routing pass,
vectorized interpolation, and a vectorized bounded window probe replace
per-key tree descents (``get_batch`` / ``range_batch`` / ``insert_batch``).
:mod:`repro.cluster` moves each shard into its own worker process behind
the same API (``ClusterEngine``), and :mod:`repro.serve` puts an asyncio
micro-batching front-end over either engine.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.api import (
    BatchEngine,
    EngineConfig,
    EngineProtocol,
    ShardDispatchEngine,
    open_engine,
    open_server,
)
from repro.baselines import BinarySearchIndex, FixedPageIndex, FullIndex
from repro.btree import BPlusTree
from repro.core import (
    CostModel,
    CostModelParams,
    FITingTree,
    SecondaryFITingTree,
    Segment,
    StringFITingTree,
    exact_cone,
    load_index,
    optimal_segment_count,
    optimal_segments,
    optimal_segments_endpoint,
    save_index,
    shrinking_cone,
    verify_segments,
)
from repro.cluster import ClusterEngine, ClusterError
from repro.engine import FlatView, ShardedEngine
from repro.memsim import AccessCounter, CacheSim, LatencyModel
from repro.net import NetClient, NetServer, Router, TcpCluster, connect, serve_tcp
from repro.obs import Telemetry

__version__ = "1.0.0"

__all__ = [
    "AccessCounter",
    "BPlusTree",
    "BatchEngine",
    "BinarySearchIndex",
    "CacheSim",
    "ClusterEngine",
    "ClusterError",
    "CostModel",
    "CostModelParams",
    "EngineConfig",
    "EngineProtocol",
    "FITingTree",
    "FixedPageIndex",
    "FlatView",
    "FullIndex",
    "LatencyModel",
    "NetClient",
    "NetServer",
    "Router",
    "ShardDispatchEngine",
    "ShardedEngine",
    "SecondaryFITingTree",
    "Segment",
    "StringFITingTree",
    "TcpCluster",
    "Telemetry",
    "connect",
    "exact_cone",
    "load_index",
    "open_engine",
    "open_server",
    "save_index",
    "serve_tcp",
    "optimal_segment_count",
    "optimal_segments",
    "optimal_segments_endpoint",
    "shrinking_cone",
    "verify_segments",
    "__version__",
]
