"""Benchmark harness: one registered experiment per paper table/figure.

Run from the command line::

    python -m repro.bench list          # show experiments
    python -m repro.bench table1        # one experiment
    python -m repro.bench all --quick   # everything, reduced sizes

Importing this package registers all experiments.
"""

from repro.bench import exp_fig6 as _exp_fig6  # noqa: F401
from repro.bench import exp_fig7 as _exp_fig7  # noqa: F401
from repro.bench import exp_fig8 as _exp_fig8  # noqa: F401
from repro.bench import exp_fig9 as _exp_fig9  # noqa: F401
from repro.bench import exp_fig10 as _exp_fig10  # noqa: F401
from repro.bench import exp_fig11 as _exp_fig11  # noqa: F401
from repro.bench import exp_fig12 as _exp_fig12  # noqa: F401
from repro.bench import exp_fig13 as _exp_fig13  # noqa: F401
from repro.bench import exp_cachesim as _exp_cachesim  # noqa: F401
from repro.bench import exp_cluster as _exp_cluster  # noqa: F401
from repro.bench import exp_engine as _exp_engine  # noqa: F401
from repro.bench import exp_misc as _exp_misc  # noqa: F401
from repro.bench import exp_net as _exp_net  # noqa: F401
from repro.bench import exp_obs as _exp_obs  # noqa: F401
from repro.bench import exp_serve as _exp_serve  # noqa: F401
from repro.bench import exp_table1 as _exp_table1  # noqa: F401
from repro.bench import exp_wal as _exp_wal  # noqa: F401
from repro.bench.harness import (
    ExperimentResult,
    build_all_indexes,
    experiment_names,
    register_experiment,
    run_experiment,
)
from repro.bench.reporting import format_table, print_table

__all__ = [
    "ExperimentResult",
    "build_all_indexes",
    "experiment_names",
    "format_table",
    "print_table",
    "register_experiment",
    "run_experiment",
]
