"""Ablation: trace-driven cache simulation of index tree descents.

Figure 6's one anomaly — "the spike in the graph for the fixed-sized index
is due to the fact that the index begins to fall out of the CPU's L2
cache" — is a *cache residency* effect. This experiment demonstrates it
from first principles, without the analytic latency model: B+ tree lookups
are traced address-by-address (:mod:`repro.memsim.trace`) and replayed
through a set-associative LRU cache (:mod:`repro.memsim.cache`).

Expected shape: at a fixed cache size, the small data-aware FITing segment
tree stays nearly fully resident (low miss ratio) across the page/error
sweep, while the fixed-page index's much larger tree crosses the cache
capacity and its miss ratio jumps — the spike's mechanism.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import FixedPageIndex
from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.memsim import AddressSpace, CacheSim, lookup_trace
from repro.workloads import uniform_lookups


def _miss_ratio(tree, queries, cache_bytes: int) -> tuple:
    space = AddressSpace()
    cache = CacheSim(capacity_bytes=cache_bytes, line_size=64, ways=8)
    # Warm-up pass so we measure steady state, then the measured pass.
    for q in queries[: len(queries) // 4]:
        cache.replay(lookup_trace(tree, (float(q), 1e18), space))
    measured = CacheSim(capacity_bytes=cache_bytes, line_size=64, ways=8)
    measured._sets = cache._sets  # continue with the warm state
    for q in queries[len(queries) // 4 :]:
        measured.replay(lookup_trace(tree, (float(q), 1e18), space))
    return measured.stats.miss_ratio, space.bytes_allocated


@register_experiment("abl_cachesim")
def abl_cachesim(
    n: int = 150_000,
    seed: int = 0,
    n_queries: int = 2_000,
    grid: Sequence[int] = (16, 64, 256, 1024),
    cache_kb: int = 64,
    dataset: str = "weblogs",
) -> ExperimentResult:
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, n_queries, seed=seed + 1)
    cache_bytes = cache_kb * 1024
    rows = []
    for param in grid:
        fiting = FITingTree(keys, error=param, buffer_capacity=0)
        fixed = FixedPageIndex(keys, page_size=param, buffer_capacity=0)
        fit_miss, fit_bytes = _miss_ratio(fiting._tree, queries, cache_bytes)
        fix_miss, fix_bytes = _miss_ratio(fixed._tree, queries, cache_bytes)
        rows.append(
            {
                "param": param,
                "fiting_tree_kb": round(fit_bytes / 1024, 1),
                "fiting_miss_ratio": round(fit_miss, 4),
                "fixed_tree_kb": round(fix_bytes / 1024, 1),
                "fixed_miss_ratio": round(fix_miss, 4),
            }
        )
    worst_gap = max(r["fixed_miss_ratio"] - r["fiting_miss_ratio"] for r in rows)
    notes = [
        f"cache: {cache_kb} KB, 8-way LRU, 64 B lines; traces replay real "
        f"descent addresses",
        f"max miss-ratio gap (fixed - fiting): {worst_gap:.3f} — the "
        f"mechanism of Figure 6's fixed-index spike: the bigger tree falls "
        f"out of cache, the data-aware one stays resident.",
    ]
    return ExperimentResult(
        name="abl_cachesim",
        title="Ablation: trace-driven cache simulation of tree descents",
        rows=rows,
        notes=notes,
        params={"n": n, "cache_kb": cache_kb, "dataset": dataset},
    )
