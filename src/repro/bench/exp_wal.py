"""Durability experiment: what does the write-ahead log cost, and how
fast is recovery?

The :mod:`repro.wal` layer makes two promises this experiment prices:

* **Off is free** — an engine opened with ``durability="off"`` carries
  ``_wal=None`` and every instrumented write verb pays exactly one
  ``is not None`` test per batch. ``off`` vs ``baseline`` (the raw batch
  implementation, bypassing the durability wrapper) pins that at
  <= 2% — the same guard shape the obs layer uses.
* **Recovery is snapshot + tail** — reopening a durable ``data_dir``
  loads the latest snapshot generation and replays only the committed
  WAL records past it, so recovery time tracks dataset size (the
  snapshot load) plus tail length, never total write history.

Throughput rows measure ``insert_batch`` in four modes — ``baseline``,
``off``, ``wal`` (group commit + fsync per batch) and ``wal+snapshot`` —
matched-pair: every repeat round builds each mode a fresh engine over
the identical base keys and streams the identical insert batches; each
mode keeps its *minimum* round. Recovery rows time ``open_engine`` over
an existing ``data_dir`` at several dataset sizes.

Results are emitted to ``BENCH_wal.json``; the off-mode guard is pinned
by ``tests/wal/test_overhead.py`` and the CI wal smoke row.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.datasets import get
from repro.engine import ShardedEngine

#: The hard-guarded claim (CI smoke + tests/wal): disabled durability
#: must stay within this fraction of the un-instrumented baseline.
OFF_OVERHEAD_LIMIT_PCT = 2.0


def _insert_ns_per_op(engine, batches: List[np.ndarray], fn) -> float:
    """Nanoseconds per inserted key for one pass of ``fn`` over batches."""
    total = int(sum(b.size for b in batches))
    start = time.perf_counter()
    for b in batches:
        fn(b, None)
    return (time.perf_counter() - start) * 1e9 / total


def _build(keys, mode: str, tmp: str, n_shards: int, error: float):
    """One fresh engine (and store, for durable modes) for a timed pass."""
    from repro.api import open_engine

    if mode in ("baseline", "off"):
        return open_engine(keys, executor="sharded", n_shards=n_shards,
                           error=error)
    return open_engine(
        keys,
        executor="sharded",
        n_shards=n_shards,
        error=error,
        durability=mode,
        data_dir=tmp,
        # Snapshot every ~1 MiB of log so the wal+snapshot row actually
        # exercises rotation inside a bench-sized run.
        snapshot_interval_bytes=1 << 20,
    )


@register_experiment("wal")
def wal(
    n: int = 200_000,
    seed: int = 0,
    n_inserts: Optional[int] = None,
    batch_size: int = 1024,
    n_shards: int = 4,
    error: float = 64.0,
    repeats: int = 3,
    dataset: str = "uniform",
    out: Optional[str] = "BENCH_wal.json",
) -> ExperimentResult:
    """WAL overhead on ``insert_batch`` plus recovery time vs size."""
    if n_inserts is None:
        n_inserts = min(n, 50_000)
    keys = get(dataset, n=n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    extra = rng.uniform(float(keys[0]), float(keys[-1]), n_inserts)
    batches = [
        np.ascontiguousarray(extra[i : i + batch_size])
        for i in range(0, n_inserts, batch_size)
    ]

    mode_names = ["baseline", "off", "wal", "wal+snapshot"]
    best: Dict[str, float] = {}
    for rnd in range(max(1, repeats)):
        order = mode_names if rnd % 2 == 0 else mode_names[::-1]
        for mode in order:
            tmp = tempfile.mkdtemp(prefix="repro-wal-bench-")
            try:
                engine = _build(keys, mode, tmp, n_shards, error)
                try:
                    fn = (
                        engine._insert_batch_impl
                        if mode == "baseline"
                        else engine.insert_batch
                    )
                    ns = _insert_ns_per_op(engine, batches, fn)
                finally:
                    engine.close()
            finally:
                shutil.rmtree(tmp, ignore_errors=True)
            if mode not in best or ns < best[mode]:
                best[mode] = ns

    base_ns = best["baseline"]
    rows: List[Dict[str, Any]] = []
    for mode in mode_names:
        ns = best[mode]
        rows.append(
            {
                "kind": "insert_throughput",
                "mode": mode,
                "wall_ns_per_op": round(ns, 2),
                "ops_per_second": round(1e9 / ns, 0) if ns else 0.0,
                "overhead_pct": round((ns / base_ns - 1.0) * 100.0, 2),
            }
        )

    # -- recovery time vs dataset size -------------------------------
    tail = rng.uniform(float(keys[0]), float(keys[-1]), 2_000)
    for size in sorted({max(n // 4, 1), max(n // 2, 1), n}):
        tmp = tempfile.mkdtemp(prefix="repro-wal-bench-")
        try:
            from repro.api import open_engine

            engine = open_engine(
                keys[:size], executor="sharded", n_shards=n_shards,
                error=error, durability="wal", data_dir=tmp,
            )
            engine.insert_batch(tail, None)
            engine.close()
            start = time.perf_counter()
            recovered = open_engine(
                executor="sharded", n_shards=n_shards, error=error,
                durability="wal", data_dir=tmp,
            )
            recovery_s = time.perf_counter() - start
            n_recovered = len(recovered)
            recovered.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        rows.append(
            {
                "kind": "recovery",
                "n": int(size),
                "tail_ops": int(tail.size),
                "n_recovered": int(n_recovered),
                "recovery_ms": round(recovery_s * 1e3, 2),
                "keys_per_second": round(n_recovered / recovery_s, 0),
            }
        )

    off_pct = next(
        r["overhead_pct"] for r in rows if r.get("mode") == "off"
    )
    notes = [
        f"off-mode overhead {off_pct:+.2f}% vs baseline "
        f"(guard <= {OFF_OVERHEAD_LIMIT_PCT:.0f}%)",
        "matched-pair minimum over "
        f"{repeats} rounds, {len(batches)} insert batches of {batch_size}",
        "recovery = snapshot load + committed-tail replay via open_engine",
    ]

    params: Dict[str, Any] = {
        "n": n,
        "n_inserts": n_inserts,
        "batch_size": batch_size,
        "n_shards": n_shards,
        "error": error,
        "repeats": repeats,
        "dataset": dataset,
        "seed": seed,
        "off_overhead_limit_pct": OFF_OVERHEAD_LIMIT_PCT,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "wal", "params": params, "rows": rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="wal",
        title="WAL durability: write overhead and recovery time",
        rows=rows,
        notes=notes,
        params=params,
    )
