"""Engine experiment: scalar vs batch vs sharded-batch lookup throughput.

Beyond the paper: measures what the :mod:`repro.engine` serving layer buys.
Three execution modes answer the same uniform query stream over the same
FITing-Tree configuration:

* ``scalar`` — the paper's read path, one ``FITingTree.get`` per query
  (B+-tree descent + interpolated bounded search, all in Python);
* ``batch`` — a single FITing-Tree answered through its flattened NumPy
  view (``get_batch``): vectorized routing, interpolation, window probe;
* ``sharded-batch`` — a :class:`~repro.engine.ShardedEngine`: the batch
  path after range-partitioned shard routing.

The headline claim (pinned by ``tests/engine``): over >= 100k uniform keys
with batch size 1024 and 4 shards, sharded-batch beats the scalar loop by
>= 5x wall-clock. Results are emitted to ``BENCH_engine.json`` so the perf
trajectory accumulates across PRs.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Sequence

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.workloads import run_batch_lookups, uniform_lookups

#: Scalar gets are ~10us each in CPython; cap the scalar reference loop and
#: report per-op numbers so big-n runs stay interactive.
_SCALAR_CAP = 20_000


def _wall_ns_scalar(index: FITingTree, queries) -> float:
    q = queries[:_SCALAR_CAP]
    get = index.get
    start = time.perf_counter()
    for key in q:
        get(key)
    return (time.perf_counter() - start) * 1e9 / len(q)


@register_experiment("engine")
def engine(
    n: int = 200_000,
    seed: int = 0,
    n_queries: Optional[int] = None,
    batch_size: int = 1024,
    n_shards: int = 4,
    error: float = 64.0,
    datasets: Sequence[str] = ("uniform", "iot", "maps"),
    out: Optional[str] = "BENCH_engine.json",
) -> ExperimentResult:
    """Throughput of the three execution modes across dataset types."""
    if n_queries is None:
        n_queries = min(n, 100_000)
    rows = []
    notes = []
    bench_rows: list = []
    for name in datasets:
        keys = get(name, n=n, seed=seed)
        queries = uniform_lookups(keys, n_queries, seed=seed + 1)
        tree = FITingTree(keys, error=error, buffer_capacity=0)
        eng = ShardedEngine(
            keys, n_shards=n_shards, error=error, buffer_capacity=0
        )

        scalar_ns = _wall_ns_scalar(tree, queries)
        batch_res = run_batch_lookups(tree, queries, batch_size=batch_size)
        shard_res = run_batch_lookups(eng, queries, batch_size=batch_size)
        assert batch_res.hits == shard_res.hits == n_queries

        for mode, wall_ns in (
            ("scalar", scalar_ns),
            ("batch", batch_res.wall_ns_per_op),
            ("sharded-batch", shard_res.wall_ns_per_op),
        ):
            row = {
                "dataset": name,
                "mode": mode,
                "wall_ns_per_op": round(wall_ns, 1),
                "ops_per_second": round(1e9 / wall_ns, 0) if wall_ns else 0.0,
                "speedup_vs_scalar": round(scalar_ns / wall_ns, 2) if wall_ns else 0.0,
            }
            rows.append(row)
            bench_rows.append(dict(row))
        notes.append(
            f"{name}: sharded-batch {scalar_ns / shard_res.wall_ns_per_op:.1f}x "
            f"over scalar, batch {scalar_ns / batch_res.wall_ns_per_op:.1f}x "
            f"({eng.n_shards} shards, {sum(s.n_segments for s in eng.shards)} "
            f"segments)"
        )

    params: Dict[str, Any] = {
        "n": n,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "n_shards": n_shards,
        "error": error,
        "seed": seed,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "engine", "params": params, "rows": bench_rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="engine",
        title="Batch engine throughput: scalar vs batch vs sharded-batch",
        rows=rows,
        notes=notes,
        params=params,
    )
