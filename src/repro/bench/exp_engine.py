"""Engine experiment: read and write throughput of the serving layer.

Beyond the paper: measures what the :mod:`repro.engine` serving layer buys.
Three execution modes answer the same uniform query stream over the same
FITing-Tree configuration:

* ``scalar`` — the paper's read path, one ``FITingTree.get`` per query
  (B+-tree descent + interpolated bounded search, all in Python);
* ``batch`` — a single FITing-Tree answered through its flattened NumPy
  view (``get_batch``): vectorized routing, interpolation, window probe;
* ``sharded-batch`` — a :class:`~repro.engine.ShardedEngine`: the batch
  path after range-partitioned shard routing.

Two write modes then push the same uniform insert stream through a
write-optimized engine configuration (small segmentation error, generous
delta buffers — the paper's Figure 12 buffer knob turned toward writes):

* ``insert-per-key`` — the pre-bulk apply path: route and sort once, then
  one buffered scalar insert per key (a tree descent + bisect each);
* ``insert-batch`` — the bulk write path: whole per-page chunks merged
  into delta buffers with one vectorized splice each
  (``SegmentPage.bulk_insert``), overflow decisions once per page.

Two delete modes complete the CRUD surface with the same comparison shape
(same engine configuration, same removal stream, identical final state):

* ``delete-per-key`` — the scalar delete path: route and sort once, then
  one ``delete`` per key (tree descent + window search + one
  ``np.delete`` page copy each);
* ``delete-batch`` — the bulk delete path: whole per-page chunks removed
  with one vectorized splice each (``SegmentPage.bulk_delete``),
  rebuild decisions once per page.

``modes`` restricts which measurements run (the CI smoke passes
``--modes delete-per-key,delete-batch``); each group's engines are only
built when one of its modes is requested.

Headline claims (pinned by ``tests/engine``): over >= 100k uniform keys,
sharded-batch beats the scalar read loop by >= 5x, and insert-batch /
delete-batch beat their per-key apply paths by >= 3x. The engine's
flat-view memory residency (pages + combined view, ~2x table data — see
``ShardedEngine.residency_report``) is recorded per dataset, including
post-delete. Results are emitted to ``BENCH_engine.json`` so the perf
trajectory accumulates across PRs.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.engine.partition import shard_bounds
from repro.workloads import run_batch_lookups, uniform_lookups

#: Scalar gets are ~10us each in CPython; cap the scalar reference loop and
#: report per-op numbers so big-n runs stay interactive.
_SCALAR_CAP = 20_000


def _wall_ns_scalar(index: FITingTree, queries) -> float:
    q = queries[:_SCALAR_CAP]
    get = index.get
    start = time.perf_counter()
    for key in q:
        get(key)
    return (time.perf_counter() - start) * 1e9 / len(q)


def _insert_stream(keys: np.ndarray, n_inserts: int, seed: int):
    rng = np.random.default_rng(seed)
    ins_keys = rng.uniform(keys[0], keys[-1], n_inserts)
    ins_values = np.arange(keys.size, keys.size + n_inserts, dtype=np.int64)
    return ins_keys, ins_values


def _wall_ns_insert_per_key(
    engine: ShardedEngine, ins_keys: np.ndarray, ins_values: np.ndarray
) -> float:
    """The pre-bulk apply path: grouped routing, one scalar insert per key.

    Reproduces what ``ShardedEngine.insert_batch`` did before the bulk
    write path landed (identical final state). The timer covers the whole
    path — sort, routing and apply — exactly like the bulk timer covers
    ``insert_batch`` end to end, so the ratio compares like with like
    (both sides also pay the same merges/splits).
    """
    start = time.perf_counter()
    order = np.argsort(ins_keys, kind="stable")
    sk, sv = ins_keys[order], ins_values[order]
    for sid, (a, b) in enumerate(shard_bounds(sk, engine.cuts)):
        shard = engine._shards[sid]
        insert = shard.insert
        for k, v in zip(sk[a:b], sv[a:b]):
            insert(k, v)
    return (time.perf_counter() - start) * 1e9 / ins_keys.size


def _wall_ns_insert_batch(
    engine: ShardedEngine, ins_keys: np.ndarray, ins_values: np.ndarray
) -> float:
    start = time.perf_counter()
    engine.insert_batch(ins_keys, ins_values)
    return (time.perf_counter() - start) * 1e9 / ins_keys.size


def _wall_ns_delete_per_key(engine: ShardedEngine, del_keys: np.ndarray) -> float:
    """The scalar delete path: grouped routing, one ``delete`` per key.

    Mirrors ``_wall_ns_insert_per_key``: the timer covers sort, routing
    and per-key apply (each key pays a tree descent, a window search and
    a whole-page ``np.delete`` copy), exactly like the bulk timer covers
    ``delete_batch`` end to end — including the same rebuilds.
    """
    start = time.perf_counter()
    order = np.argsort(del_keys, kind="stable")
    sk = del_keys[order]
    for sid, (a, b) in enumerate(shard_bounds(sk, engine.cuts)):
        delete = engine._shards[sid].delete
        for k in sk[a:b]:
            delete(k)
    return (time.perf_counter() - start) * 1e9 / del_keys.size


def _wall_ns_delete_batch(engine: ShardedEngine, del_keys: np.ndarray) -> float:
    start = time.perf_counter()
    engine.delete_batch(del_keys)
    return (time.perf_counter() - start) * 1e9 / del_keys.size


#: The measurement groups ``modes`` may select from.
_READ_MODES = ("scalar", "batch", "sharded-batch")
_INSERT_MODES = ("insert-per-key", "insert-batch")
_DELETE_MODES = ("delete-per-key", "delete-batch")


@register_experiment("engine")
def engine(
    n: int = 200_000,
    seed: int = 0,
    n_queries: Optional[int] = None,
    batch_size: int = 1024,
    n_shards: int = 4,
    error: float = 64.0,
    n_inserts: Optional[int] = None,
    n_deletes: Optional[int] = None,
    insert_error: float = 1056.0,
    insert_buffer: int = 1024,
    datasets: Sequence[str] = ("uniform", "iot", "maps"),
    modes: Optional[Sequence[str]] = None,
    out: Optional[str] = "BENCH_engine.json",
) -> ExperimentResult:
    """Read and write throughput of the engine across dataset types."""
    all_modes = _READ_MODES + _INSERT_MODES + _DELETE_MODES
    if modes is None:
        modes = all_modes
    elif isinstance(modes, str):
        modes = tuple(m.strip() for m in modes.split(","))
    unknown = set(modes) - set(all_modes)
    if unknown:
        raise ValueError(f"unknown engine modes {sorted(unknown)}")
    if n_queries is None:
        n_queries = min(n, 100_000)
    if n_inserts is None:
        n_inserts = min(n, 100_000)
    if n_deletes is None:
        # Half the table at most: the post-delete residency figure should
        # describe a surviving engine, not an emptied one.
        n_deletes = min(n // 2, 100_000)
    insert_buffer = min(insert_buffer, max(1, int(insert_error) - 1))
    rows = []
    notes = []
    bench_rows: list = []
    residency: Dict[str, Dict[str, Any]] = {}
    for name in datasets:
        keys = get(name, n=n, seed=seed)
        measured = []  # (mode, wall_ns, ref_ns, baseline)

        if set(modes) & set(_READ_MODES):
            queries = uniform_lookups(keys, n_queries, seed=seed + 1)
            tree = FITingTree(keys, error=error, buffer_capacity=0)
            eng = ShardedEngine(
                keys, n_shards=n_shards, error=error, buffer_capacity=0
            )
            scalar_ns = _wall_ns_scalar(tree, queries)
            batch_res = run_batch_lookups(tree, queries, batch_size=batch_size)
            shard_res = run_batch_lookups(eng, queries, batch_size=batch_size)
            assert batch_res.hits == shard_res.hits == n_queries
            residency.setdefault(name, {}).update(eng.residency_report())
            measured += [
                ("scalar", scalar_ns, scalar_ns, "scalar"),
                ("batch", batch_res.wall_ns_per_op, scalar_ns, "scalar"),
                ("sharded-batch", shard_res.wall_ns_per_op, scalar_ns, "scalar"),
            ]
            notes.append(
                f"{name}: sharded-batch "
                f"{scalar_ns / shard_res.wall_ns_per_op:.1f}x over scalar, "
                f"batch {scalar_ns / batch_res.wall_ns_per_op:.1f}x "
                f"({eng.n_shards} shards, "
                f"{sum(s.n_segments for s in eng.shards)} segments)"
            )

        if set(modes) & set(_INSERT_MODES):
            # Write path: identical engines, identical final state; only
            # the apply strategy differs (per-key loop vs bulk merges).
            ins_keys, ins_values = _insert_stream(keys, n_inserts, seed + 2)
            eng_per_key = ShardedEngine(
                keys, n_shards=n_shards, error=insert_error,
                buffer_capacity=insert_buffer,
            )
            eng_bulk = ShardedEngine(
                keys, n_shards=n_shards, error=insert_error,
                buffer_capacity=insert_buffer,
            )
            per_key_ns = _wall_ns_insert_per_key(
                eng_per_key, ins_keys, ins_values
            )
            bulk_ns = _wall_ns_insert_batch(eng_bulk, ins_keys, ins_values)
            sample = ins_keys[:: max(1, n_inserts // 512)]
            assert (
                eng_per_key.get_batch(sample) == eng_bulk.get_batch(sample)
            ).all(), "bulk write path diverged from per-key apply"
            measured += [
                ("insert-per-key", per_key_ns, per_key_ns, "insert-per-key"),
                ("insert-batch", bulk_ns, per_key_ns, "insert-per-key"),
            ]
            notes.append(
                f"{name}: insert-batch {per_key_ns / bulk_ns:.1f}x over "
                f"per-key apply ({n_inserts} inserts, buffer {insert_buffer})"
                + (
                    f"; flat-view residency "
                    f"{residency[name]['residency_ratio']:.2f}x table data"
                    if name in residency and "residency_ratio" in residency[name]
                    else ""
                )
            )

        if set(modes) & set(_DELETE_MODES):
            # Delete path: same comparison shape — identical engines and
            # removal stream, per-key np.delete loop vs per-page splices.
            rng = np.random.default_rng(seed + 3)
            del_keys = keys[rng.choice(keys.size, n_deletes, replace=False)]
            eng_del_pk = ShardedEngine(
                keys, n_shards=n_shards, error=insert_error,
                buffer_capacity=insert_buffer,
            )
            eng_del_bulk = ShardedEngine(
                keys, n_shards=n_shards, error=insert_error,
                buffer_capacity=insert_buffer,
            )
            del_pk_ns = _wall_ns_delete_per_key(eng_del_pk, del_keys)
            del_bulk_ns = _wall_ns_delete_batch(eng_del_bulk, del_keys)
            miss = object()
            sample = np.concatenate(
                [del_keys[:: max(1, n_deletes // 256)],
                 keys[:: max(1, n // 256)]]
            )
            a = eng_del_pk.get_batch(sample, miss)
            b = eng_del_bulk.get_batch(sample, miss)
            assert len(eng_del_pk) == len(eng_del_bulk) and all(
                x is y if (x is miss or y is miss) else x == y
                for x, y in zip(a, b)
            ), "bulk delete path diverged from per-key delete"
            residency.setdefault(name, {})["post_delete"] = (
                eng_del_bulk.residency_report()
            )
            measured += [
                ("delete-per-key", del_pk_ns, del_pk_ns, "delete-per-key"),
                ("delete-batch", del_bulk_ns, del_pk_ns, "delete-per-key"),
            ]
            notes.append(
                f"{name}: delete-batch {del_pk_ns / del_bulk_ns:.1f}x over "
                f"per-key delete ({n_deletes} deletes); post-delete "
                f"residency "
                f"{residency[name]['post_delete']['residency_ratio']:.2f}x"
            )

        # Read modes are normalized to the scalar get loop, write modes to
        # their per-key apply loops; ``baseline`` names each reference.
        for mode, wall_ns, ref_ns, baseline in measured:
            if mode not in modes:
                continue
            row = {
                "dataset": name,
                "mode": mode,
                "wall_ns_per_op": round(wall_ns, 1),
                "ops_per_second": round(1e9 / wall_ns, 0) if wall_ns else 0.0,
                "speedup_vs_baseline": (
                    round(ref_ns / wall_ns, 2) if wall_ns else 0.0
                ),
                "baseline": baseline,
            }
            rows.append(row)
            bench_rows.append(dict(row))

    params: Dict[str, Any] = {
        "n": n,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "n_shards": n_shards,
        "error": error,
        "n_inserts": n_inserts,
        "n_deletes": n_deletes,
        "insert_error": insert_error,
        "insert_buffer": insert_buffer,
        "modes": list(modes),
        "seed": seed,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {
                    "experiment": "engine",
                    "params": params,
                    "rows": bench_rows,
                    "residency": residency,
                },
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="engine",
        title="Engine throughput: batch reads and bulk writes vs scalar",
        rows=rows,
        notes=notes,
        params=params,
    )
