"""Figure 12 (Appendix A.2): insert throughput vs buffer size.

Paper setup: Weblogs, error = 20000, buffer sizes 10..10000. Shape to
reproduce: throughput grows with the buffer (fewer merge/re-segmentation
events) and the trade-off is lookup latency, which grows with the buffer —
we report both so the read/write tuning knob the paper describes is
visible in one table.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.memsim import LatencyModel
from repro.workloads import (
    insert_stream,
    run_inserts,
    run_lookups,
    uniform_lookups,
)


@register_experiment("fig12")
def fig12(
    n: int = 100_000,
    seed: int = 0,
    n_inserts: int = 10_000,
    error: int = 20_000,
    buffers: Sequence[int] = (10, 100, 1_000, 10_000),
    dataset: str = "weblogs",
) -> ExperimentResult:
    keys = get(dataset, n=n, seed=seed)
    stream = insert_stream(n_inserts, float(keys[0]), float(keys[-1]), seed=seed + 1)
    queries = uniform_lookups(keys, 5_000, seed=seed + 2)
    model = LatencyModel()
    rows = []
    throughputs = []
    for buffer in buffers:
        index = FITingTree(keys, error=error, buffer_capacity=buffer)
        ins = run_inserts(index, stream, latency_model=model)
        look = run_lookups(index, queries, latency_model=model, use_bulk=True)
        throughputs.append(ins.ops_per_second)
        rows.append(
            {
                "buffer": buffer,
                "minserts_per_s": round(ins.ops_per_second / 1e6, 4),
                "splits": ins.extra["splits"],
                "modeled_insert_ns": round(ins.modeled_ns_per_op, 1),
                "modeled_lookup_ns": round(look.modeled_ns_per_op, 1),
            }
        )
    notes = [
        f"throughput ratio largest/smallest buffer: "
        f"{throughputs[-1] / throughputs[0]:.1f}x (paper: larger buffers -> "
        f"fewer splits -> higher write throughput)",
        "lookup cost rises with buffer size: the DBA's read/write knob "
        "(paper A.2).",
    ]
    return ExperimentResult(
        name="fig12",
        title="Insert throughput vs buffer size",
        rows=rows,
        notes=notes,
        params={"n": n, "error": error, "n_inserts": n_inserts},
    )
