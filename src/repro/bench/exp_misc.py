"""Remaining experiments: Figure 1, Appendix A.3, and two ablations.

* ``fig1`` — the IoT key-to-position staircase (printed as a table of
  hourly positions: the day/night/weekend regimes are visible as rate
  changes per hour).
* ``a3`` — the adversarial input on which ShrinkingCone produces ``N + 2``
  segments while the optimum needs O(1): the greedy/optimal ratio must grow
  linearly in ``N``.
* ``abl_cone`` — paper's in-cone accept test vs our exact intersection
  test: segments saved by the exact test, at identical error guarantees.
* ``abl_branching`` — B+ tree fanout sweep: the cost model's ``log_b``
  tree term in practice.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.core.optimal import optimal_segment_count
from repro.core.segmentation import shrinking_cone
from repro.datasets import adversarial_keys, get
from repro.memsim import LatencyModel
from repro.workloads import run_lookups, uniform_lookups


@register_experiment("fig1")
def fig1(
    n: int = 100_000,
    seed: int = 0,
    hours: int = 72,
    errors: Sequence[int] = (100, 1000),
) -> ExperimentResult:
    """IoT timestamp -> position mapping (the staircase of Figure 1)."""
    keys = get("iot", n=n, seed=seed)
    rows = []
    for h in range(hours):
        t = h * 3600.0
        pos = int(np.searchsorted(keys, t))
        next_pos = int(np.searchsorted(keys, t + 3600.0))
        rows.append(
            {
                "hour": h,
                "day": h // 24,
                "hour_of_day": h % 24,
                "position": pos,
                "events_this_hour": next_pos - pos,
            }
        )
    seg_counts = {e: len(shrinking_cone(keys, e)) for e in errors}
    notes = [
        "positions step steeply during working hours and stall at night — "
        "the regimes the segmentation exploits (paper Figure 1).",
        "segments needed: "
        + ", ".join(f"error={e}: {c}" for e, c in seg_counts.items()),
    ]
    return ExperimentResult(
        name="fig1",
        title="IoT key->position staircase (first 3 days)",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed},
    )


@register_experiment("a3")
def a3(
    n: int = 0,  # unused; kept for harness-uniform CLI
    seed: int = 0,
    error: int = 100,
    pattern_counts: Sequence[int] = (10, 50, 200, 1000),
) -> ExperimentResult:
    """Appendix A.3: greedy is non-competitive on the constructed input."""
    del n, seed
    rows = []
    ratios = []
    for n_patterns in pattern_counts:
        keys = adversarial_keys(n_patterns, error)
        greedy = len(shrinking_cone(keys, error))
        optimal = optimal_segment_count(keys, error)
        ratios.append(greedy / optimal)
        rows.append(
            {
                "patterns_N": n_patterns,
                "elements": len(keys),
                "greedy": greedy,
                "greedy_expected": n_patterns + 2,
                "optimal": optimal,
                "ratio": round(greedy / optimal, 1),
            }
        )
    notes = [
        f"ratio grows {ratios[0]:.0f} -> {ratios[-1]:.0f} with N: greedy is "
        f"not competitive (paper A.3 proves it can be arbitrarily worse)",
        "optimal stays O(1) segments regardless of N.",
    ]
    return ExperimentResult(
        name="a3",
        title="Adversarial input: greedy vs optimal",
        rows=rows,
        notes=notes,
        params={"error": error},
    )


@register_experiment("abl_cone")
def abl_cone(
    n: int = 100_000,
    seed: int = 0,
    errors: Sequence[int] = (10, 100, 1000),
    datasets: Sequence[str] = ("weblogs", "iot", "maps", "taxi_drop_lat"),
) -> ExperimentResult:
    """Ablation: paper accept test vs exact intersection test."""
    rows = []
    savings = []
    for name in datasets:
        keys = get(name, n=n, seed=seed)
        for error in errors:
            paper = len(shrinking_cone(keys, error, accept="paper"))
            exact = len(shrinking_cone(keys, error, accept="exact"))
            saved = 1.0 - exact / paper
            savings.append(saved)
            rows.append(
                {
                    "dataset": name,
                    "error": error,
                    "paper_test": paper,
                    "exact_test": exact,
                    "segments_saved": f"{100 * saved:.1f}%",
                }
            )
    notes = [
        f"exact test saves 0..{100 * max(savings):.1f}% segments at identical "
        f"error guarantees (the paper's accept test is sufficient but not "
        f"necessary; see DESIGN.md)",
    ]
    return ExperimentResult(
        name="abl_cone",
        title="Ablation: cone accept test (paper vs exact)",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed},
    )


@register_experiment("abl_search")
def abl_search(
    n: int = 200_000,
    seed: int = 0,
    errors: Sequence[int] = (8, 64, 512, 4096),
    dataset: str = "weblogs",
) -> ExperimentResult:
    """Ablation: in-segment search strategy (paper Section 4.1.2).

    The paper notes binary search is the default but "for very small error
    thresholds, linear search can be faster"; exponential search pays for
    the *actual* prediction miss instead of the worst-case window.
    """
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, 10_000, seed=seed + 1)
    rows = []
    for error in errors:
        for mode in ("binary", "linear", "exponential"):
            index = FITingTree(
                keys, error=error, buffer_capacity=0, search=mode
            )
            res = run_lookups(index, queries, use_bulk=True)
            rows.append(
                {
                    "error": error,
                    "search": mode,
                    "probes_per_lookup": round(
                        res.counter.segment_probes / res.ops, 2
                    ),
                    "modeled_ns": round(res.modeled_ns_per_op, 1),
                    "wall_ns": round(res.wall_ns_per_op, 1),
                    "hit_rate": round(res.hits / res.ops, 3),
                }
            )
    notes = [
        "expected shape: linear wins only at the smallest errors (paper: "
        "'for very small error thresholds, linear search can be faster') "
        "and explodes at large ones; exponential tracks binary within ~2x, "
        "beating it where predictions are accurate.",
    ]
    return ExperimentResult(
        name="abl_search",
        title="Ablation: in-segment search strategy",
        rows=rows,
        notes=notes,
        params={"n": n, "dataset": dataset},
    )


@register_experiment("abl_branching")
def abl_branching(
    n: int = 200_000,
    seed: int = 0,
    error: int = 32,
    branchings: Sequence[int] = (4, 8, 16, 32, 64, 128),
    dataset: str = "weblogs",
) -> ExperimentResult:
    """Ablation: B+ tree fanout vs modeled lookup latency and size."""
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, 10_000, seed=seed + 1)
    model = LatencyModel()
    rows = []
    for b in branchings:
        index = FITingTree(keys, error=error, buffer_capacity=0, branching=b)
        res = run_lookups(index, queries, latency_model=model, use_bulk=True)
        rows.append(
            {
                "branching": b,
                "height": index.height,
                "modeled_ns": round(res.modeled_ns_per_op, 1),
                "size_kb": round(index.model_bytes() / 1024.0, 2),
            }
        )
    notes = [
        "tree height (the cost model's log_b term) shrinks with fanout; "
        "beyond the point where the segment tree is a few levels deep, "
        "extra fanout stops helping.",
    ]
    return ExperimentResult(
        name="abl_branching",
        title="Ablation: tree fanout",
        rows=rows,
        notes=notes,
        params={"n": n, "error": error, "dataset": dataset},
    )
