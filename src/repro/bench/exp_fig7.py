"""Figure 7: insert throughput vs error threshold.

Paper setup: the FITing-Tree's buffer is half the error; the fixed-page
baseline gets page size = error with half-page buffers; the full index
inserts directly. Shape to reproduce: the full index sustains the highest
write rate (no page splits), FITing-Tree and fixed paging are comparable,
with the FITing-Tree ahead at small errors (more segments -> fewer, cheaper
merges; the paper makes exactly this observation).
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import FixedPageIndex, FullIndex
from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.memsim import LatencyModel
from repro.workloads import insert_stream, run_inserts

_ERRORS = (16, 64, 256, 1024)


@register_experiment("fig7")
def fig7(
    n: int = 150_000,
    seed: int = 0,
    n_inserts: int = 15_000,
    errors: Sequence[int] = _ERRORS,
    datasets: Sequence[str] = ("weblogs", "iot", "maps"),
) -> ExperimentResult:
    model = LatencyModel()
    rows = []
    notes = []
    for name in datasets:
        keys = get(name, n=n, seed=seed)
        stream = insert_stream(
            n_inserts, float(keys[0]), float(keys[-1]), seed=seed + 1
        )
        for error in errors:
            builders = {
                "fiting": lambda: FITingTree(
                    keys, error=error, buffer_capacity=int(error) // 2
                ),
                "fixed": lambda: FixedPageIndex(
                    keys, page_size=int(error), buffer_capacity=int(error) // 2
                ),
                "full": lambda: FullIndex(keys),
            }
            for structure, build in builders.items():
                index = build()
                res = run_inserts(index, stream, latency_model=model)
                mops = res.ops_per_second / 1e6
                rows.append(
                    {
                        "dataset": name,
                        "error": error,
                        "structure": structure,
                        "minserts_per_s": round(mops, 4),
                        "modeled_ns": round(res.modeled_ns_per_op, 1),
                        "splits": res.extra["splits"],
                        "moves_per_insert": round(
                            res.counter.data_moves / res.ops, 1
                        ),
                    }
                )
    notes.append(
        "expected shape: the full index never splits (splits=0) — the "
        "paper's stated reason it sustains the highest write rate; fiting "
        "~ fixed, with fiting's merges cheaper at small errors "
        "(moves_per_insert column). minserts_per_s is CPython wall clock: "
        "relative use only; the paper's absolute throughputs are C++."
    )
    return ExperimentResult(
        name="fig7",
        title="Insert throughput vs error",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed, "n_inserts": n_inserts},
    )
