"""Network tier experiment: real sockets vs the in-process serve ceiling.

Beyond the paper: measures what the :mod:`repro.net` TCP tier costs and
what the router buys. Four segments over one dataset:

* **in-process ceiling** — the closed-loop throughput of the plain
  :class:`~repro.serve.Server` (no sockets); every TCP number is a
  fraction of this.
* **scalar gets over TCP** — closed-loop ops/s vs concurrent client
  count against one :func:`~repro.net.serve_tcp` server and against a
  :class:`~repro.net.Router` over 1/2/4-backend
  :class:`~repro.net.TcpCluster` fleets, plus an open-loop Poisson run
  at ~60% of the measured closed-loop capacity for queueing-inclusive
  p50/p99.
* **batch reads** — ``get_batch`` of ``batch_size`` keys per frame: the
  array codec amortizes framing until the engine's numpy work dominates,
  so keys/s over the socket approaches the in-process rate.
* **SLA adaptation** — a load step at a deliberately bad 50ms batch
  delay; the controller's adapted ``max_delay`` and the before/after
  windowed p99 are reported.

Every scalar-get segment is checked **bit-identical** against the
engine's scalar ``get`` before any number is reported, and the router
segment re-checks against the single-server replies — the conformance
bullet over real sockets.

Honesty note: on a single-core box the N server processes and the
client serialize on one CPU, so router-over-N throughput cannot exceed
1x the single-server rate (the cluster bench records the same ceiling);
``params.cpu_count`` records the box so multi-core runs are
distinguishable. Results land in ``BENCH_net.json``.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.api import open_engine
from repro.bench.harness import ExperimentResult, register_experiment
from repro.datasets import get
from repro.net import AsyncNetClient, TcpCluster, serve_tcp
from repro.serve import Server
from repro.workloads import run_closed_loop, run_open_loop, uniform_lookups


def _check_identical(results, expected, label):
    got = np.asarray(results)
    if not np.array_equal(got, expected):
        raise AssertionError(f"{label} diverged from scalar engine.get")


async def _closed_tcp(address, queries, conc, telemetry=None):
    client = AsyncNetClient(*address, timeout=60.0, telemetry=telemetry)
    await client.connect()
    try:
        return await run_closed_loop(client, queries, concurrency=conc)
    finally:
        await client.close()


async def _open_tcp(address, queries, rate, seed):
    client = AsyncNetClient(*address, timeout=60.0)
    await client.connect()
    try:
        return await run_open_loop(client, queries, rate=rate, seed=seed)
    finally:
        await client.close()


async def _closed_router(fleet, queries, conc):
    async with fleet.router(health_interval=0) as router:
        return await run_closed_loop(router, queries, concurrency=conc)


async def _open_router(fleet, queries, rate, seed):
    async with fleet.router(health_interval=0) as router:
        return await run_open_loop(router, queries, rate=rate, seed=seed)


async def _batch_rate(get_batch, queries, batch_size, n_batches):
    """Keys per second pushing ``n_batches`` full ``get_batch`` frames."""
    t0 = time.perf_counter()
    total = 0
    for i in range(n_batches):
        lo = (i * batch_size) % max(1, queries.size - batch_size)
        out = await get_batch(queries[lo:lo + batch_size])
        total += len(out)
    return total / (time.perf_counter() - t0)


async def _sla_segment(keys, queries):
    """Load step at a bad 50ms delay; report the controller's correction."""
    net = await serve_tcp(
        keys, np.arange(keys.size, dtype=np.int64),
        n_shards=2, eager_flush=False, max_delay=0.05,
        sla_target_p99_us=5_000.0, sla_interval=10.0,  # ticked manually
    )
    ctl = net.server._sla
    client = AsyncNetClient(*net.address, timeout=60.0)
    await client.connect()
    try:
        async def burst(rounds):
            for _ in range(rounds):
                await asyncio.gather(
                    *[client.get(float(k)) for k in queries[:32]]
                )

        before_delay = net.server._batcher.max_delay
        await burst(3)
        ctl.tick()
        p99_before = ctl.last_p99_us
        after_delay = net.server._batcher.max_delay
        await burst(3)
        ctl.tick()
        p99_after = ctl.last_p99_us
        return {
            "target_p99_us": ctl.target_p99_us,
            "max_delay_before": before_delay,
            "max_delay_after": after_delay,
            "p99_us_before": round(p99_before, 1),
            "p99_us_after": round(p99_after, 1),
        }
    finally:
        await client.close()
        await net.close()


@register_experiment("net")
def net(
    n: int = 200_000,
    seed: int = 0,
    n_requests: Optional[int] = None,
    clients: Sequence[int] = (4, 16),
    backends: Sequence[int] = (1, 2, 4),
    batch_size: int = 4096,
    n_batches: int = 8,
    error: float = 64.0,
    out: Optional[str] = "BENCH_net.json",
) -> ExperimentResult:
    """Socket-tier throughput/latency vs the in-process serve ceiling."""
    if n_requests is None:
        n_requests = min(max(n // 100, 500), 3_000)
    keys = get("uniform", n=n, seed=seed)
    values = np.arange(keys.size, dtype=np.int64)
    queries = uniform_lookups(keys, n_requests, seed=seed + 1)
    batch_queries = uniform_lookups(
        keys, max(batch_size * 2, batch_size + 1), seed=seed + 2
    )

    engine = open_engine(keys, values, n_shards=2, error=error)
    expected = np.asarray([engine.get(k) for k in queries])
    conc = max(clients)

    rows = []
    notes = []

    # -- in-process ceiling ------------------------------------------------
    async def inproc():
        async with Server(engine, latency_window=0) as srv:
            await srv.warm()
            closed = await run_closed_loop(srv, queries, concurrency=conc)
            batch = await _batch_rate(
                srv.get_batch, batch_queries, batch_size, n_batches
            )
            return closed, batch

    closed, inproc_batch = asyncio.run(inproc())
    _check_identical(closed.results, expected, "in-process serve")
    inproc_ops = closed.ops_per_second
    rows.append({
        "path": "inproc", "backends": 0, "clients": conc,
        "load": "closed-loop",
        "ops_per_second": round(inproc_ops, 0),
        "p50_us": round(closed.percentile_us(50), 1),
        "p99_us": round(closed.percentile_us(99), 1),
        "vs_inproc": 1.0,
    })
    notes.append(
        f"in-process ceiling: {inproc_ops:,.0f} scalar gets/s at "
        f"{conc} closed-loop clients (no sockets)"
    )

    # -- single TCP server: ops/s vs client count --------------------------
    async def single_server():
        out_rows = []
        net_srv = await serve_tcp(
            keys, values, n_shards=2, error=error, latency_window=0
        )
        try:
            for c in clients:
                res = await _closed_tcp(net_srv.address, queries, c)
                _check_identical(res.results, expected, f"tcp x{c}")
                out_rows.append((c, res))
            # Open loop at ~60% of the measured capacity: stable queueing.
            rate = 0.6 * out_rows[-1][1].ops_per_second
            open_res = await _open_tcp(
                net_srv.address, queries, rate, seed + 3
            )
            _check_identical(open_res.results, expected, "tcp open-loop")
            return out_rows, rate, open_res
        finally:
            await net_srv.close()

    tcp_rows, rate, open_res = asyncio.run(single_server())
    for c, res in tcp_rows:
        rows.append({
            "path": "tcp", "backends": 1, "clients": c,
            "load": "closed-loop",
            "ops_per_second": round(res.ops_per_second, 0),
            "p50_us": round(res.percentile_us(50), 1),
            "p99_us": round(res.percentile_us(99), 1),
            "vs_inproc": round(res.ops_per_second / inproc_ops, 3),
        })
    rows.append({
        "path": "tcp", "backends": 1, "clients": conc,
        "load": f"open-loop@{rate:,.0f}/s",
        "ops_per_second": round(open_res.ops_per_second, 0),
        "p50_us": round(open_res.percentile_us(50), 1),
        "p99_us": round(open_res.percentile_us(99), 1),
        "vs_inproc": "",
    })
    single_ops = tcp_rows[-1][1].ops_per_second
    notes.append(
        f"one TCP server: {single_ops:,.0f} scalar gets/s at {conc} "
        f"clients = {single_ops / inproc_ops:.0%} of the in-process "
        f"ceiling (per-frame cost)"
    )

    # -- router over 1/2/4 backends ---------------------------------------
    single_reference = np.asarray(tcp_rows[-1][1].results)
    router_ops: Dict[int, float] = {}
    for b in backends:
        with TcpCluster(keys, values, backends=b, n_shards=1,
                        error=error, latency_window=0) as fleet:
            res = asyncio.run(_closed_router(fleet, queries, conc))
            _check_identical(res.results, expected, f"router x{b}")
            _check_identical(res.results, single_reference,
                             f"router x{b} vs single-server")
            router_ops[b] = res.ops_per_second
            r_rate = 0.6 * res.ops_per_second
            open_r = asyncio.run(
                _open_router(fleet, queries, r_rate, seed + 4)
            )
            rows.append({
                "path": "router", "backends": b, "clients": conc,
                "load": "closed-loop",
                "ops_per_second": round(res.ops_per_second, 0),
                "p50_us": round(res.percentile_us(50), 1),
                "p99_us": round(res.percentile_us(99), 1),
                "vs_inproc": round(res.ops_per_second / inproc_ops, 3),
            })
            rows.append({
                "path": "router", "backends": b, "clients": conc,
                "load": f"open-loop@{r_rate:,.0f}/s",
                "ops_per_second": round(open_r.ops_per_second, 0),
                "p50_us": round(open_r.percentile_us(50), 1),
                "p99_us": round(open_r.percentile_us(99), 1),
                "vs_inproc": "",
            })
    if 2 in router_ops and 1 in router_ops:
        ratio = router_ops[2] / router_ops[1]
        cpus = os.cpu_count() or 1
        notes.append(
            f"router over 2 backends: {ratio:.2f}x one backend "
            f"(cpu_count={cpus}; with every process sharing "
            f"{cpus} core(s), >1x requires real parallelism — "
            f"the same serialization ceiling BENCH_cluster.json records)"
        )

    # -- batch reads over the socket ---------------------------------------
    async def tcp_batches():
        net_srv = await serve_tcp(
            keys, values, n_shards=2, error=error, latency_window=0
        )
        client = AsyncNetClient(*net_srv.address, timeout=120.0)
        await client.connect()
        try:
            return await _batch_rate(
                client.get_batch, batch_queries, batch_size, n_batches
            )
        finally:
            await client.close()
            await net_srv.close()

    tcp_batch = asyncio.run(tcp_batches())
    for path, rate_keys in (("inproc", inproc_batch), ("tcp", tcp_batch)):
        rows.append({
            "path": path, "backends": 1 if path == "tcp" else 0,
            "clients": 1, "load": f"get_batch[{batch_size}]",
            "ops_per_second": round(rate_keys, 0),
            "p50_us": "", "p99_us": "",
            "vs_inproc": (
                1.0 if path == "inproc"
                else round(tcp_batch / inproc_batch, 3)
            ),
        })
    notes.append(
        f"batched reads amortize framing: get_batch[{batch_size}] over "
        f"TCP reaches {tcp_batch / inproc_batch:.0%} of the in-process "
        f"keys/s (vs {single_ops / inproc_ops:.0%} for scalar gets)"
    )

    # -- SLA adaptation -----------------------------------------------------
    sla = asyncio.run(_sla_segment(keys, queries))
    rows.append({
        "path": "sla", "backends": 1, "clients": 32,
        "load": "load-step",
        "ops_per_second": "",
        "p50_us": "",
        "p99_us": f"{sla['p99_us_before']:.0f}->{sla['p99_us_after']:.0f}",
        "vs_inproc": "",
    })
    notes.append(
        f"SLA control: max_delay {sla['max_delay_before'] * 1e3:.0f}ms -> "
        f"{sla['max_delay_after'] * 1e6:.0f}us brought p99 "
        f"{sla['p99_us_before']:,.0f}us -> {sla['p99_us_after']:,.0f}us "
        f"(target {sla['target_p99_us']:,.0f}us)"
    )
    notes.append(
        "all scalar-get segments verified bit-identical to engine.get "
        "before reporting; router replies also matched the single-server "
        "replies"
    )

    params: Dict[str, Any] = {
        "n": n,
        "n_requests": n_requests,
        "clients": list(clients),
        "backends": list(backends),
        "batch_size": batch_size,
        "n_batches": n_batches,
        "error": error,
        "seed": seed,
        "cpu_count": os.cpu_count(),
        "sla": sla,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "net", "params": params, "rows": rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="net",
        title="Network tier: TCP serving and routing vs in-process ceiling",
        rows=rows,
        notes=notes,
        params=params,
    )
