"""Figure 6: lookup latency vs index size for all four structures.

The paper's headline plot: for Weblogs/IoT (clustered) and Maps
(non-clustered), sweep the FITing-Tree error and the fixed page size,
plotting per-lookup latency against index size; the full index is a single
point and binary search a zero-size horizontal line. The claims to
reproduce in shape:

* the FITing-Tree curve dominates fixed-size paging (same latency at
  orders of magnitude less space);
* both converge to binary search at tiny index sizes and to the full index
  at large sizes;
* the near-linear Maps dataset reaches full-index latency at a smaller
  index than the periodic Weblogs/IoT datasets.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.baselines import BinarySearchIndex, FixedPageIndex, FullIndex
from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.core.secondary import SecondaryFITingTree
from repro.datasets import get
from repro.memsim import LatencyModel
from repro.workloads import run_lookups, uniform_lookups

_GRID = (16, 64, 256, 1024, 4096, 16384, 65536)


_PAPER_C_NS = 100.0  # the paper's generic random-access cost


def _measure(index, queries, model) -> dict:
    res = run_lookups(index, queries, latency_model=model, use_bulk=True)
    # Two pricings: cache-hierarchy-aware (modeled_ns) and the paper's own
    # flat c=100ns per logical random access (paper_ns).
    paper_ns = _PAPER_C_NS * res.counter.random_accesses / res.ops
    return {
        "size_kb": round(index.model_bytes() / 1024.0, 3),
        "modeled_ns": round(res.modeled_ns_per_op, 1),
        "paper_ns": round(paper_ns, 1),
        "wall_ns": round(res.wall_ns_per_op, 1),
        "hit_rate": round(res.hits / res.ops, 3),
    }


@register_experiment("fig6")
def fig6(
    n: int = 200_000,
    seed: int = 0,
    n_queries: int = 20_000,
    grid: Sequence[int] = _GRID,
    datasets: Sequence[str] = ("weblogs", "iot", "maps"),
) -> ExperimentResult:
    model = LatencyModel()  # cache-hierarchy pricing
    rows = []
    notes = []
    for name in datasets:
        keys = get(name, n=n, seed=seed)
        queries = uniform_lookups(keys, n_queries, seed=seed + 1)
        secondary = name == "maps"  # paper: Maps is a non-clustered index

        fiting_series = []
        for error in grid:
            if error >= n:
                continue
            if secondary:
                rng = np.random.default_rng(seed + 2)
                column = keys[rng.permutation(n)]  # unsorted table column
                index = SecondaryFITingTree(column, error=error, buffer_capacity=0)
            else:
                index = FITingTree(keys, error=error, buffer_capacity=0)
            row = {"dataset": name, "structure": "fiting", "param": error}
            row.update(_measure(index, queries, model))
            rows.append(row)
            fiting_series.append(row)

        fixed_series = []
        for page in grid:
            if page >= n:
                continue
            index = FixedPageIndex(keys, page_size=page, buffer_capacity=0)
            row = {"dataset": name, "structure": "fixed", "param": page}
            row.update(_measure(index, queries, model))
            rows.append(row)
            fixed_series.append(row)

        full_row = {"dataset": name, "structure": "full", "param": "-"}
        full_row.update(_measure(FullIndex(keys), queries, model))
        rows.append(full_row)
        binary_row = {"dataset": name, "structure": "binary", "param": "-"}
        binary_row.update(_measure(BinarySearchIndex(keys), queries, model))
        rows.append(binary_row)

        # Shape check 1: at matched latency, how much smaller is fiting?
        savings = []
        for fx in fixed_series:
            candidates = [
                r["size_kb"]
                for r in fiting_series
                if r["modeled_ns"] <= fx["modeled_ns"]
            ]
            if candidates and min(candidates) > 0:
                savings.append(fx["size_kb"] / min(candidates))
        if savings:
            notes.append(
                f"{name}: fiting vs fixed size at matched latency: "
                f"{min(savings):.1f}x..{max(savings):.0f}x smaller"
            )
        # Shape check 2: gap to the dense-index latency floor.
        best_fit = min(fiting_series, key=lambda r: r["modeled_ns"])
        notes.append(
            f"{name}: best fiting {best_fit['modeled_ns']:.0f}ns at "
            f"{best_fit['size_kb']:.1f} KB vs full {full_row['modeled_ns']:.0f}ns "
            f"at {full_row['size_kb']:.0f} KB "
            f"({full_row['size_kb'] / max(best_fit['size_kb'], 1e-9):.0f}x larger)"
        )
    return ExperimentResult(
        name="fig6",
        title="Lookup latency vs index size",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed, "n_queries": n_queries},
    )
