"""Figure 11: data-size scalability of lookup latency.

Paper setup: Weblogs scaled by powers of two while preserving the trends
(our generator does this naturally), error = fixed page size = 100. Shape
to reproduce: the three tree-based structures scale like ``log_b`` (nearly
flat), binary search like ``log_2`` (steepest growth), and the FITing-Tree
hugs the full index while staying orders of magnitude smaller — the paper
additionally notes the full/fixed indexes simply stop fitting in memory at
scale factor 32, which manifests here as their index size exploding
relative to the FITing-Tree's.
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import (
    ExperimentResult,
    build_all_indexes,
    register_experiment,
)
from repro.datasets import get
from repro.memsim import LatencyModel
from repro.workloads import run_lookups, uniform_lookups


@register_experiment("fig11")
def fig11(
    n: int = 40_000,
    seed: int = 0,
    n_queries: int = 5_000,
    scale_factors: Sequence[int] = (1, 2, 4, 8, 16, 32),
    error: int = 100,
    dataset: str = "weblogs",
) -> ExperimentResult:
    model = LatencyModel()
    rows = []
    series = {name: [] for name in ("fiting", "fixed", "full", "binary")}
    for sf in scale_factors:
        keys = get(dataset, n=n * sf, seed=seed)
        queries = uniform_lookups(keys, n_queries, seed=seed + sf)
        indexes = build_all_indexes(keys, error=error, page_size=error)
        row = {"scale": sf, "n": n * sf}
        for structure, index in indexes.items():
            res = run_lookups(index, queries, latency_model=model, use_bulk=True)
            row[f"{structure}_ns"] = round(res.modeled_ns_per_op, 1)
            series[structure].append(res.modeled_ns_per_op)
            if structure in ("fiting", "full"):
                row[f"{structure}_kb"] = round(index.model_bytes() / 1024.0, 1)
        rows.append(row)

    def growth(name: str) -> float:
        return series[name][-1] / series[name][0]

    notes = [
        f"latency growth x{scale_factors[-1]} data: "
        + ", ".join(f"{s} {growth(s):.2f}x" for s in series),
        "expected shape: binary grows fastest (log2 n); tree-based nearly "
        "flat; fiting tracks full at a fraction of the size.",
    ]
    return ExperimentResult(
        name="fig11",
        title="Lookup latency vs data scale",
        rows=rows,
        notes=notes,
        params={"base_n": n, "error": error, "dataset": dataset},
    )
