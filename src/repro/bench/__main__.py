"""CLI entry point: ``python -m repro.bench <experiment | all | list>``.

``--quick`` shrinks dataset sizes for smoke runs; ``--n`` / ``--seed``
override an experiment's defaults explicitly.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.harness import (
    experiment_accepts,
    experiment_names,
    run_experiment,
)

#: n used by --quick (experiments scale their own query counts off n).
_QUICK_N = 20_000


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="FITing-Tree reproduction experiment harness",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'all', or 'list'",
    )
    parser.add_argument("--n", type=int, default=None, help="dataset size")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--quick", action="store_true", help=f"shrink sizes (n={_QUICK_N})"
    )
    parser.add_argument(
        "--modes",
        default=None,
        help="comma-separated measurement modes, for experiments that "
        "support filtering (e.g. engine: delete-per-key,delete-batch)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in experiment_names():
            print(name)
        return 0

    names = experiment_names() if args.experiment == "all" else [args.experiment]
    overrides = {"seed": args.seed}
    if args.n is not None:
        overrides["n"] = args.n
    elif args.quick:
        overrides["n"] = _QUICK_N
    modes = None
    if args.modes is not None:
        modes = tuple(m.strip() for m in args.modes.split(","))
        unsupported = [n for n in names if not experiment_accepts(n, "modes")]
        if unsupported and args.experiment != "all":
            parser.error(
                f"--modes is not supported by: {', '.join(unsupported)}"
            )

    for name in names:
        kwargs = dict(overrides)
        if modes is not None and experiment_accepts(name, "modes"):
            # In an 'all' run the flag applies only where supported.
            kwargs["modes"] = modes
        start = time.perf_counter()
        result = run_experiment(name, **kwargs)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"[{name}] completed in {elapsed:.1f}s")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
