"""Figure 8: non-linearity ratio of the evaluation datasets.

Shape to reproduce (paper Section 7.1.1): IoT shows one pronounced
periodicity bump (human day/night rhythm); Weblogs shows several smaller
bumps (daily/weekly/seasonal); Maps is comparatively linear at small
scales. The bump *positions* depend on dataset size and generator
parameters — the diagnostic is each curve's shape, not its absolute x.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis import log_error_grid, nonlinearity_profile
from repro.bench.harness import ExperimentResult, register_experiment
from repro.datasets import get


@register_experiment("fig8")
def fig8(
    n: int = 200_000,
    seed: int = 0,
    datasets: Sequence[str] = ("weblogs", "iot", "maps"),
    lo_exp: int = 1,
    hi_exp: int = 5,
    per_decade: int = 2,
) -> ExperimentResult:
    # Drop grid points where fewer than ~20 worst-case segments would fit:
    # with error approaching n the ratio degenerates to S_e/(n/(e+1)) ~ 0.5
    # regardless of the data and carries no periodicity signal.
    grid = [e for e in log_error_grid(lo_exp, hi_exp, per_decade) if e <= n / 20]
    profiles = {
        name: nonlinearity_profile(get(name, n=n, seed=seed), grid)
        for name in datasets
    }
    rows = []
    for error in grid:
        if not any(error in p for p in profiles.values()):
            continue
        row = {"error": int(error)}
        for name in datasets:
            ratio = profiles[name].get(error)
            row[name] = round(ratio, 4) if ratio is not None else ""
        rows.append(row)

    notes = []
    for name in datasets:
        profile = profiles[name]
        if not profile:
            continue
        peak_error = max(profile, key=profile.get)
        small_scale = [v for e, v in profile.items() if e <= 100]
        notes.append(
            f"{name}: peak ratio {profile[peak_error]:.3f} at error "
            f"{peak_error:.0f}; mean ratio at scales<=100: "
            f"{sum(small_scale) / len(small_scale):.3f}"
        )
    notes.append(
        "expected shape: iot one pronounced bump; weblogs several bumps; "
        "maps flat/low at small scales."
    )
    return ExperimentResult(
        name="fig8",
        title="Non-linearity ratio vs error scale",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed},
    )
