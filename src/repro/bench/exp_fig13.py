"""Figure 13 (Appendix A.1): lookup time breakdown, tree vs page search.

For both the FITing-Tree and the fixed-page index, split each lookup's
random accesses into tree-descent accesses and in-page search probes across
a sweep of error/page sizes. Shape to reproduce: at small errors the tree
dominates (many segments -> deep tree, tiny windows); as the error grows
the balance flips to page search; and at equal x the FITing-Tree spends
*less* of its budget in the tree than fixed paging because data-aware
segments make the tree far smaller (the paper's stated conclusion).
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import FixedPageIndex
from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.workloads import run_lookups, uniform_lookups

_GRID = (10, 100, 1_000, 10_000, 100_000)


@register_experiment("fig13")
def fig13(
    n: int = 200_000,
    seed: int = 0,
    n_queries: int = 5_000,
    grid: Sequence[int] = _GRID,
    dataset: str = "weblogs",
) -> ExperimentResult:
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, n_queries, seed=seed + 1)
    rows = []
    crossover = {"fiting": None, "fixed": None}
    for param in grid:
        if param >= n:
            continue
        for structure, index in (
            ("fiting", FITingTree(keys, error=param, buffer_capacity=0)),
            ("fixed", FixedPageIndex(keys, page_size=param, buffer_capacity=0)),
        ):
            res = run_lookups(index, queries, use_bulk=True)
            counter = res.counter
            total = max(counter.random_accesses, 1)
            pct_tree = 100.0 * counter.tree_nodes / total
            pct_page = 100.0 * counter.segment_probes / total
            if crossover[structure] is None and pct_page > pct_tree:
                crossover[structure] = param
            rows.append(
                {
                    "param": param,
                    "structure": structure,
                    "pct_tree": round(pct_tree, 1),
                    "pct_page": round(pct_page, 1),
                    "tree_accesses": round(counter.tree_nodes / res.ops, 2),
                    "page_probes": round(counter.segment_probes / res.ops, 2),
                }
            )
    fit_share = [r["pct_tree"] for r in rows if r["structure"] == "fiting"]
    fix_share = [r["pct_tree"] for r in rows if r["structure"] == "fixed"]
    wins = sum(1 for a, b in zip(fit_share, fix_share) if a <= b)
    notes = [
        f"page-search share overtakes tree search at error="
        f"{crossover['fiting']} (fiting) vs page={crossover['fixed']} (fixed)",
        f"fiting spends a smaller share in the tree than fixed at "
        f"{wins}/{len(fit_share)} grid points — its tree is much smaller "
        f"for the same bound (paper A.1).",
    ]
    return ExperimentResult(
        name="fig13",
        title="Lookup breakdown: tree vs page search",
        rows=rows,
        notes=notes,
        params={"n": n, "dataset": dataset, "n_queries": n_queries},
    )
