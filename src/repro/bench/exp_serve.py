"""Serving experiment: naive per-request awaits vs batched async serving.

Beyond the paper: measures what the :mod:`repro.serve` front-end buys when
the engine's batch verbs are fed by *independent concurrent clients*
instead of pre-assembled arrays. Two server configurations answer the same
closed-loop query stream over the same :class:`~repro.engine.ShardedEngine`:

* ``scalar-await`` — the naive asyncio front-end: batching disabled
  (``max_batch=1``), so every request becomes its own event-loop task
  running the engine's scalar ``get`` — a full Python descent plus the
  per-request scheduling any unbatched async service pays.
* ``batched`` — the :class:`~repro.serve.Server` default: concurrent
  requests coalesce into micro-batches (flush on size / delay / loop-idle)
  answered by the vectorized ``get_batch`` path and fanned back out.

Both modes run through the *same* Server/RequestBatcher machinery, so the
measured difference isolates exactly the dispatch strategy. Results are
checked bit-identical between the two modes and against a scalar
``engine.get`` reference loop before any number is reported.

The closed-loop sweep (concurrency x mode) is the headline: at 64+
concurrent clients the batched mode clears >= 3x the naive throughput
(pinned by ``tests/serve/test_acceptance.py``). Noise handling: the two
modes alternate within each repeat, and the reported speedup is the
*median of matched-pair ratios* — a slow machine phase hits both sides of
a pair, so the ratio stays meaningful even when absolute throughput
drifts between repeats (per-mode ``ops_per_second`` is the median over
that mode's runs). An open-loop segment
(Poisson arrivals at a configurable rate) records queueing-inclusive
latency percentiles for both modes at the same offered load. Results are
emitted to ``BENCH_serve.json`` so the serving-layer trajectory
accumulates across PRs alongside ``BENCH_engine.json``.
"""

from __future__ import annotations

import asyncio
import json
import statistics
from typing import Any, Dict, Optional, Sequence

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.api import open_engine
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.serve import Server
from repro.workloads import run_closed_loop, run_open_loop, uniform_lookups


def _server(engine: ShardedEngine, mode: str, max_batch: int, max_delay: float):
    # latency_window=0: the traffic drivers measure latency client-side,
    # so server-side sampling would only add hot-path clock reads (to
    # both modes equally, but noise is noise).
    if mode == "scalar-await":
        return Server(engine, max_batch=1, max_delay=0.0, latency_window=0)
    return Server(
        engine, max_batch=max_batch, max_delay=max_delay, latency_window=0
    )


async def _closed_run(engine, mode, queries, conc, max_batch, max_delay):
    async with _server(engine, mode, max_batch, max_delay) as server:
        await server.warm()
        return await run_closed_loop(server, queries, concurrency=conc)


async def _open_run(engine, mode, queries, rate, seed, max_batch, max_delay):
    async with _server(engine, mode, max_batch, max_delay) as server:
        await server.warm()
        return await run_open_loop(server, queries, rate=rate, seed=seed)


@register_experiment("serve")
def serve(
    n: int = 500_000,
    seed: int = 0,
    n_requests: Optional[int] = None,
    concurrencies: Sequence[int] = (16, 64, 128, 256),
    repeats: int = 3,
    max_batch: int = 1024,
    max_delay: float = 0.001,
    n_shards: int = 4,
    error: float = 64.0,
    open_loop_rate: Optional[float] = None,
    dataset: str = "uniform",
    out: Optional[str] = "BENCH_serve.json",
) -> ExperimentResult:
    """Throughput and latency of naive vs batched async serving."""
    if n_requests is None:
        n_requests = min(n, 30_000)
    keys = get(dataset, n=n, seed=seed)
    engine = open_engine(
        keys, n_shards=n_shards, error=error, buffer_capacity=0
    )
    queries = uniform_lookups(keys, n_requests, seed=seed + 1)
    # Bit-identical reference: the scalar path, one get per key.
    expected = np.asarray([engine.get(k) for k in queries])

    rows = []
    notes = []
    bench_rows: list = []
    speedups: Dict[int, float] = {}
    for conc in concurrencies:
        per_mode: Dict[str, list] = {"scalar-await": [], "batched": []}
        sample: Dict[str, Any] = {}
        for _ in range(repeats):
            # Alternate modes within each repeat so slow machine phases
            # (thermal/scheduler drift) hit both sides evenly.
            for mode in ("scalar-await", "batched"):
                res = asyncio.run(
                    _closed_run(engine, mode, queries, conc, max_batch, max_delay)
                )
                if not np.array_equal(np.asarray(res.results), expected):
                    raise AssertionError(
                        f"{mode} serving diverged from scalar engine.get"
                    )
                per_mode[mode].append(res)
        # Matched pairs: repeat i's naive and batched runs are adjacent in
        # time, so their ratio cancels machine drift that the absolute
        # medians cannot.
        pair_ratios = [
            b.ops_per_second / s.ops_per_second
            for s, b in zip(per_mode["scalar-await"], per_mode["batched"])
        ]
        speedups[conc] = statistics.median(pair_ratios)
        for mode in ("scalar-await", "batched"):
            results = per_mode[mode]
            med = statistics.median(r.ops_per_second for r in results)
            sample[mode] = med
            best = max(results, key=lambda r: r.ops_per_second)
            row = {
                "mode": mode,
                "load": "closed-loop",
                "concurrency": conc,
                "ops_per_second": round(med, 0),
                "p50_us": round(best.percentile_us(50), 1),
                "p95_us": round(best.percentile_us(95), 1),
                "p99_us": round(best.percentile_us(99), 1),
                "speedup_vs_naive": (
                    1.0 if mode == "scalar-await" else round(speedups[conc], 2)
                ),
            }
            rows.append(row)
            bench_rows.append(dict(row))
        notes.append(
            f"closed-loop x{conc}: batched {speedups[conc]:.1f}x over "
            f"per-request awaits ({sample['batched']:,.0f} vs "
            f"{sample['scalar-await']:,.0f} ops/s median; speedup = median "
            f"of {repeats} matched-pair ratios)"
        )

    high = [c for c in concurrencies if c >= 64]
    if high:
        best_conc = max(high, key=lambda c: speedups[c])
        notes.append(
            f"headline: {speedups[best_conc]:.1f}x at {best_conc} "
            f"concurrent clients (bar: >= 3x at 64+)"
        )

    # Open-loop segment: same offered load for both modes, so the latency
    # gap shows up as queueing delay rather than throughput.
    if open_loop_rate is None:
        open_loop_rate = 25_000.0
    open_n = min(n_requests, 10_000)
    for mode in ("scalar-await", "batched"):
        res = asyncio.run(
            _open_run(
                engine, mode, queries[:open_n], open_loop_rate, seed + 2,
                max_batch, max_delay,
            )
        )
        row = {
            "mode": mode,
            "load": f"open-loop@{open_loop_rate:,.0f}/s",
            "concurrency": "",
            "ops_per_second": round(res.ops_per_second, 0),
            "p50_us": round(res.percentile_us(50), 1),
            "p95_us": round(res.percentile_us(95), 1),
            "p99_us": round(res.percentile_us(99), 1),
            "speedup_vs_naive": "",
        }
        rows.append(row)
        bench_rows.append(dict(row))
    notes.append(
        f"open-loop at {open_loop_rate:,.0f} req/s: latencies include "
        f"queueing delay from the Poisson arrival schedule"
    )

    params: Dict[str, Any] = {
        "n": n,
        "n_requests": n_requests,
        "concurrencies": list(concurrencies),
        "repeats": repeats,
        "max_batch": max_batch,
        "max_delay": max_delay,
        "n_shards": n_shards,
        "error": error,
        "open_loop_rate": open_loop_rate,
        "dataset": dataset,
        "seed": seed,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "serve", "params": params, "rows": bench_rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="serve",
        title="Async serving: naive per-request awaits vs micro-batched",
        rows=rows,
        notes=notes,
        params=params,
    )
