"""Table 1: ShrinkingCone vs optimal segment counts per dataset and error.

The paper compares the greedy segment count against the optimal DP on 1M
element samples of six real attributes for error thresholds 10/100/1000 and
finds ratios between 1.05 and 1.6. We reproduce the table on the synthetic
substitutes with both optimal variants:

* ``optimal`` — free-slope optimum (exact for the segment definition the
  index actually uses; runs at full ``n``);
* ``opt_endpt`` — the paper's endpoint-anchored DP (O(n²); computed on a
  prefix sample of ``endpoint_n`` elements, with the greedy count on the
  same sample for a like-for-like ratio).
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.optimal import optimal_segment_count, optimal_segments_endpoint
from repro.core.segmentation import shrinking_cone
from repro.datasets import get

_DATASETS = (
    "taxi_drop_lat",
    "taxi_drop_lon",
    "taxi_pickup_time",
    "osm_lon",
    "weblogs",
    "iot",
)


@register_experiment("table1")
def table1(
    n: int = 50_000,
    seed: int = 0,
    errors: Sequence[int] = (10, 100, 1000),
    endpoint_n: int = 8_000,
    datasets: Sequence[str] = _DATASETS,
) -> ExperimentResult:
    rows = []
    ratios = []
    for name in datasets:
        keys = get(name, n=n, seed=seed)
        for error in errors:
            greedy = len(shrinking_cone(keys, error))
            opt = optimal_segment_count(keys, error)
            sample = keys[:endpoint_n]
            greedy_s = len(shrinking_cone(sample, error))
            endpoint = len(
                optimal_segments_endpoint(sample, error, max_n=endpoint_n)
            )
            ratio = greedy / opt
            ratios.append(ratio)
            rows.append(
                {
                    "dataset": name,
                    "error": error,
                    "greedy": greedy,
                    "optimal": opt,
                    "ratio": round(ratio, 2),
                    "greedy@sample": greedy_s,
                    "opt_endpt@sample": endpoint,
                    "ratio_endpt": round(greedy_s / endpoint, 2),
                }
            )
    notes = [
        f"greedy/optimal ratio range: {min(ratios):.2f}..{max(ratios):.2f} "
        f"(paper Table 1: 1.05..1.6 vs endpoint-anchored optimal)",
        "free-slope optimal <= endpoint optimal by construction, so ratios "
        "vs 'optimal' upper-bound the paper's.",
    ]
    return ExperimentResult(
        name="table1",
        title="ShrinkingCone vs Optimal (segments)",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed, "endpoint_n": endpoint_n},
    )
