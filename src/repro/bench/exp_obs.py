"""Observability experiment: what does telemetry cost on the hot loop?

The :mod:`repro.obs` layer promises that *disabled* telemetry is free in
any way that matters: an engine opened with ``telemetry="off"`` carries
``telemetry=None`` and every instrumented batch verb pays exactly one
``is not None`` test per batch. This experiment prices that promise —
and the enabled modes — on the ``get_batch`` hot loop:

* ``baseline`` — the raw batch implementation, bypassing the telemetry
  wrapper entirely (what the code was before instrumentation);
* ``off`` — the public ``get_batch`` with ``telemetry=None`` (the
  disabled path every default deployment runs);
* ``metrics`` — counters update per batch (two cached-child ``inc``\\ s);
* ``workload`` — metrics plus the workload profiler (heatmap bincount +
  hot-key accumulator per batch, no tracing);
* ``full`` — metrics plus a ``engine.get_batch`` span into the tracer's
  ring buffer per batch (profiling explicitly disabled, for a clean
  tracing-cost row);
* ``full+workload`` — everything on: metrics, spans, profiler and the
  slow-op log.

Measurement is matched-pair at *batch* granularity: within a round,
every batch is answered by all modes back-to-back (in a seeded
independently shuffled order per batch, so each mode sees the same
predecessor and cache-warmth distribution), per-mode times accumulate
across the round, and each mode keeps its *minimum* round. Interleaving this finely matters on a
shared single-vCPU box: frequency drift and steal-time bursts span many
batches, so anything slower than one batch lands on all modes alike and
cancels out of the differentials. ``overhead_pct`` is relative to
``baseline``.

Headline claims (pinned by ``tests/obs/test_overhead.py`` and the CI
obs-overhead smoke row): the ``off`` mode costs <= 2% over ``baseline``
and the workload profiler <= 5% *increment* over the ``metrics`` mode
(``workload`` minus ``metrics``, both priced against ``baseline``). The
guards are differentials between rows measured in the same matched-pair
rounds *on a shared engine instance*, so common-mode drift — CPU
frequency, noisy-neighbor stalls on a shared vCPU, per-instance
allocation placement — cancels instead of landing on one row. Results are
emitted to ``BENCH_obs.json`` so the overhead trajectory accumulates
across PRs.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.obs import Telemetry
from repro.workloads import uniform_lookups

#: The hard-guarded claims (CI smoke + tests/obs): disabled telemetry
#: must stay within this fraction of the un-instrumented baseline.
OFF_OVERHEAD_LIMIT_PCT = 2.0

#: The workload profiler's increment — mode ``"workload"`` minus mode
#: ``"metrics"``, as percentage points of baseline — must stay within
#: this bound. A differential, like the off guard: the profiler's cost
#: is the only thing that separates the two rows.
WORKLOAD_OVERHEAD_LIMIT_PCT = 5.0


def _round_ns_per_op(
    modes, batches: List[np.ndarray], total: int, rng: np.random.Generator
) -> Dict[str, float]:
    """One matched round: every batch through every mode, ns/op per mode.

    Modes run back-to-back on each batch in an independently shuffled
    order per batch. A mere rotation is not enough: it preserves cyclic
    adjacency, so one mode would *always* run right behind another
    doing identical work on the same engine and inherit its warm cache
    (measured at -14% on a mode whose true cost is positive). A fresh
    permutation per batch gives every mode the same predecessor
    distribution, so warmth advantages cancel out of the differentials.
    """
    k = len(modes)
    sums = [0.0] * k
    for q in batches:
        for m in rng.permutation(k):
            fn = modes[m][1]
            t0 = time.perf_counter()
            fn(q)
            sums[m] += time.perf_counter() - t0
    return {modes[m][0]: sums[m] * 1e9 / total for m in range(k)}


@register_experiment("obs")
def obs(
    n: int = 200_000,
    seed: int = 0,
    n_queries: Optional[int] = None,
    batch_size: int = 1024,
    n_shards: int = 4,
    error: float = 64.0,
    repeats: int = 5,
    dataset: str = "uniform",
    out: Optional[str] = "BENCH_obs.json",
) -> ExperimentResult:
    """Telemetry overhead on the ``get_batch`` hot loop, per mode."""
    if n_queries is None:
        n_queries = min(n, 100_000)
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, n_queries, seed=seed + 1)
    batches = [
        np.ascontiguousarray(queries[i : i + batch_size])
        for i in range(0, n_queries, batch_size)
    ]
    total = int(sum(b.size for b in batches))

    def build(telemetry):
        return ShardedEngine(
            keys,
            n_shards=n_shards,
            error=error,
            buffer_capacity=0,
            telemetry=telemetry,
        )

    eng_off = build(None)
    eng_workload = build(Telemetry(mode="metrics", workload=True))
    # workload=False keeps the "full" row a clean tracing-cost figure;
    # the everything-on cost is its own "full+workload" row.
    eng_full = build(Telemetry(mode="full", workload=False))
    eng_full_wl = build(Telemetry(mode="full", workload=True))

    # Both guarded differentials compare two modes on ONE shared engine
    # instance: distinct instances carry a per-process allocation-luck
    # bias of a few percent (page-array placement) that would land
    # directly on the differential. baseline/off share eng_off;
    # metrics/workload share eng_workload — the metrics row unhooks the
    # profiler around the call (two attribute stores, ~40ns, inside the
    # timed window on a ~400us batch).
    profiler = eng_workload._workload

    def metrics_fn(q):
        eng_workload._workload = None
        out = eng_workload.get_batch(q)
        eng_workload._workload = profiler
        return out

    modes = [
        ("baseline", lambda q: eng_off._get_batch_impl(q, None)),
        ("off", eng_off.get_batch),
        ("metrics", metrics_fn),
        ("workload", eng_workload.get_batch),
        ("full", eng_full.get_batch),
        ("full+workload", eng_full_wl.get_batch),
    ]
    # Warm every engine (flat-view builds) before any timed round.
    for _, fn in modes:
        fn(batches[0])

    best: Dict[str, float] = {}
    rng = np.random.default_rng(seed + 2)
    for _ in range(max(1, repeats)):
        round_ns = _round_ns_per_op(modes, batches, total, rng)
        for mode, ns in round_ns.items():
            if mode not in best or ns < best[mode]:
                best[mode] = ns

    base_ns = best["baseline"]
    rows = []
    for mode, _ in modes:
        ns = best[mode]
        rows.append(
            {
                "mode": mode,
                "wall_ns_per_op": round(ns, 2),
                "ops_per_second": round(1e9 / ns, 0) if ns else 0.0,
                "overhead_pct": round((ns / base_ns - 1.0) * 100.0, 2),
            }
        )

    off_pct = next(r["overhead_pct"] for r in rows if r["mode"] == "off")
    wl_pct = next(r["overhead_pct"] for r in rows if r["mode"] == "workload")
    met_pct = next(
        r["overhead_pct"] for r in rows if r["mode"] == "metrics"
    )
    notes = [
        f"off-mode overhead {off_pct:+.2f}% vs baseline "
        f"(guard <= {OFF_OVERHEAD_LIMIT_PCT:.0f}%)",
        f"workload profiler increment {wl_pct - met_pct:+.2f}% "
        f"(workload minus metrics; guard <= "
        f"{WORKLOAD_OVERHEAD_LIMIT_PCT:.0f}%)",
        "matched-pair minimum over "
        f"{repeats} rounds, {len(batches)} batches of {batch_size}",
    ]

    params: Dict[str, Any] = {
        "n": n,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "n_shards": n_shards,
        "error": error,
        "repeats": repeats,
        "dataset": dataset,
        "seed": seed,
        "off_overhead_limit_pct": OFF_OVERHEAD_LIMIT_PCT,
        "workload_overhead_limit_pct": WORKLOAD_OVERHEAD_LIMIT_PCT,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "obs", "params": params, "rows": rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="obs",
        title="Telemetry overhead on the get_batch hot loop",
        rows=rows,
        notes=notes,
        params=params,
    )
