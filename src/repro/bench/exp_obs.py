"""Observability experiment: what does telemetry cost on the hot loop?

The :mod:`repro.obs` layer promises that *disabled* telemetry is free in
any way that matters: an engine opened with ``telemetry="off"`` carries
``telemetry=None`` and every instrumented batch verb pays exactly one
``is not None`` test per batch. This experiment prices that promise —
and the enabled modes — on the ``get_batch`` hot loop:

* ``baseline`` — the raw batch implementation, bypassing the telemetry
  wrapper entirely (what the code was before instrumentation);
* ``off`` — the public ``get_batch`` with ``telemetry=None`` (the
  disabled path every default deployment runs);
* ``metrics`` — counters update per batch (two cached-child ``inc``\\ s);
* ``full`` — metrics plus a ``engine.get_batch`` span into the tracer's
  ring buffer per batch.

Measurement is matched-pair: every repeat round times all modes
back-to-back over the identical pre-chunked query stream, and each mode
keeps its *minimum* round (robust to scheduler noise landing on one
mode). ``overhead_pct`` is relative to ``baseline``.

Headline claim (pinned by ``tests/obs/test_overhead.py`` and the CI
obs-overhead smoke row): the ``off`` mode costs <= 2% over ``baseline``.
Results are emitted to ``BENCH_obs.json`` so the overhead trajectory
accumulates across PRs.
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.obs import Telemetry
from repro.workloads import uniform_lookups

#: The two hard-guarded claims (CI smoke + tests/obs): disabled telemetry
#: must stay within this fraction of the un-instrumented baseline.
OFF_OVERHEAD_LIMIT_PCT = 2.0


def _wall_ns_per_op(fn, batches: List[np.ndarray], total: int) -> float:
    """Nanoseconds per query for one pass of ``fn`` over the batch list."""
    start = time.perf_counter()
    for q in batches:
        fn(q)
    return (time.perf_counter() - start) * 1e9 / total


@register_experiment("obs")
def obs(
    n: int = 200_000,
    seed: int = 0,
    n_queries: Optional[int] = None,
    batch_size: int = 1024,
    n_shards: int = 4,
    error: float = 64.0,
    repeats: int = 5,
    dataset: str = "uniform",
    out: Optional[str] = "BENCH_obs.json",
) -> ExperimentResult:
    """Telemetry overhead on the ``get_batch`` hot loop, per mode."""
    if n_queries is None:
        n_queries = min(n, 100_000)
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, n_queries, seed=seed + 1)
    batches = [
        np.ascontiguousarray(queries[i : i + batch_size])
        for i in range(0, n_queries, batch_size)
    ]
    total = int(sum(b.size for b in batches))

    def build(telemetry):
        return ShardedEngine(
            keys,
            n_shards=n_shards,
            error=error,
            buffer_capacity=0,
            telemetry=telemetry,
        )

    eng_off = build(None)
    eng_metrics = build(Telemetry(mode="metrics"))
    eng_full = build(Telemetry(mode="full"))
    # (mode, callable) in fixed round order; baseline and off share an
    # engine so they answer over identical shard state.
    modes = [
        ("baseline", lambda q: eng_off._get_batch_impl(q, None)),
        ("off", eng_off.get_batch),
        ("metrics", eng_metrics.get_batch),
        ("full", eng_full.get_batch),
    ]
    # Warm every engine (flat-view builds) before any timed round.
    for _, fn in modes:
        fn(batches[0])

    best: Dict[str, float] = {}
    for rnd in range(max(1, repeats)):
        # Alternate the measurement order between rounds so slow drift
        # (CPU frequency, cache warmth) cannot bias one mode's minimum.
        order = modes if rnd % 2 == 0 else modes[::-1]
        for mode, fn in order:
            ns = _wall_ns_per_op(fn, batches, total)
            if mode not in best or ns < best[mode]:
                best[mode] = ns

    base_ns = best["baseline"]
    rows = []
    for mode, _ in modes:
        ns = best[mode]
        rows.append(
            {
                "mode": mode,
                "wall_ns_per_op": round(ns, 2),
                "ops_per_second": round(1e9 / ns, 0) if ns else 0.0,
                "overhead_pct": round((ns / base_ns - 1.0) * 100.0, 2),
            }
        )

    off_pct = next(r["overhead_pct"] for r in rows if r["mode"] == "off")
    notes = [
        f"off-mode overhead {off_pct:+.2f}% vs baseline "
        f"(guard <= {OFF_OVERHEAD_LIMIT_PCT:.0f}%)",
        "matched-pair minimum over "
        f"{repeats} rounds, {len(batches)} batches of {batch_size}",
    ]

    params: Dict[str, Any] = {
        "n": n,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "n_shards": n_shards,
        "error": error,
        "repeats": repeats,
        "dataset": dataset,
        "seed": seed,
        "off_overhead_limit_pct": OFF_OVERHEAD_LIMIT_PCT,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "obs", "params": params, "rows": rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="obs",
        title="Telemetry overhead on the get_batch hot loop",
        rows=rows,
        notes=notes,
        params=params,
    )
