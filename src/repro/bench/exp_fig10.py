"""Figure 10: cost-model accuracy — estimated vs measured latency and size.

Paper setup: Weblogs, c = 50 ns per random access. Estimated lookup latency
comes from the Section 6 model; "actual" latency is the access-counted cost
priced at the same flat 50 ns (our hardware substitute — see DESIGN.md).
Estimated size uses the pessimistic f=0.5 tree bound; actual size is the
built index's modeled bytes. Shape to reproduce: size estimates are a tight
upper bound; latency estimates track the actual curve and stay pessimistic
across the sweep (the paper's model "predicts an upper bound").
"""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.cost_model import CostModel, CostModelParams
from repro.core.fiting_tree import FITingTree
from repro.datasets import get
from repro.memsim import LatencyModel
from repro.workloads import run_lookups, uniform_lookups

_ERRORS = (16, 64, 256, 1024, 4096, 16384)


@register_experiment("fig10")
def fig10(
    n: int = 200_000,
    seed: int = 0,
    n_queries: int = 10_000,
    errors: Sequence[int] = _ERRORS,
    c_ns: float = 50.0,
    dataset: str = "weblogs",
) -> ExperimentResult:
    keys = get(dataset, n=n, seed=seed)
    queries = uniform_lookups(keys, n_queries, seed=seed + 1)
    params = CostModelParams(c_ns=c_ns)
    cost_model = CostModel.learned(keys, params=params)
    flat = LatencyModel(c=c_ns)

    rows = []
    lat_ratios = []
    size_ratios = []
    for error in errors:
        buffer = int(error) // 2
        index = FITingTree(keys, error=error, buffer_capacity=buffer)
        res = run_lookups(index, queries, latency_model=flat, use_bulk=True)
        est_lat = cost_model.lookup_latency_ns(error, buffer_size=buffer)
        est_size = cost_model.size_bytes(error)
        actual_size = index.model_bytes()
        lat_ratios.append(est_lat / max(res.modeled_ns_per_op, 1e-9))
        size_ratios.append(est_size / max(actual_size, 1e-9))
        rows.append(
            {
                "error": error,
                "est_latency_ns": round(est_lat, 1),
                "actual_latency_ns": round(res.modeled_ns_per_op, 1),
                "lat_est/act": round(lat_ratios[-1], 2),
                "est_size_kb": round(est_size / 1024.0, 2),
                "actual_size_kb": round(actual_size / 1024.0, 2),
                "size_est/act": round(size_ratios[-1], 2),
            }
        )
    notes = [
        f"latency est/actual range {min(lat_ratios):.2f}..{max(lat_ratios):.2f} "
        f"(paper: estimate is an upper bound, i.e. >= 1)",
        f"size est/actual range {min(size_ratios):.2f}..{max(size_ratios):.2f} "
        f"(paper: pessimistic but accurate)",
    ]
    return ExperimentResult(
        name="fig10",
        title="Cost model: estimated vs actual (latency, size)",
        rows=rows,
        notes=notes,
        params={"n": n, "seed": seed, "c_ns": c_ns, "dataset": dataset},
    )
