"""Experiment harness: registry, result type, and shared builders.

Every table/figure of the paper has an experiment module under
``repro.bench`` that registers a function here. Experiments return
:class:`ExperimentResult` — rows (printed as the paper-style table), notes
(the shape checks: who wins, by what factor, where curves cross), and the
parameters used. ``python -m repro.bench <name>`` runs one; ``all`` runs
the full suite.

All experiments accept ``n`` (dataset size) and ``seed`` and default to
sizes that complete in seconds-to-a-minute in CPython; EXPERIMENTS.md
records a full run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

import numpy as np

from repro.baselines import BinarySearchIndex, FixedPageIndex, FullIndex
from repro.core.errors import InvalidParameterError
from repro.core.fiting_tree import FITingTree
from repro.bench.reporting import format_table

__all__ = [
    "ExperimentResult",
    "register_experiment",
    "run_experiment",
    "experiment_names",
    "build_all_indexes",
]


@dataclass
class ExperimentResult:
    """Rows + shape notes from one experiment run."""

    name: str
    title: str
    rows: List[Dict[str, Any]]
    notes: List[str] = field(default_factory=list)
    params: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [format_table(self.rows, title=f"[{self.name}] {self.title}")]
        if self.params:
            parts.append(
                "params: " + ", ".join(f"{k}={v}" for k, v in self.params.items())
            )
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)


_EXPERIMENTS: Dict[str, Callable[..., ExperimentResult]] = {}


def register_experiment(name: str):
    """Decorator: register an experiment function under ``name``."""

    def deco(fn: Callable[..., ExperimentResult]):
        if name in _EXPERIMENTS:
            raise InvalidParameterError(f"experiment {name!r} already registered")
        _EXPERIMENTS[name] = fn
        return fn

    return deco


def experiment_accepts(name: str, param: str) -> bool:
    """Whether the experiment registered under ``name`` takes ``param``.

    Lets the CLI forward optional flags (e.g. ``--modes``) only to
    experiments whose signature declares them, instead of crashing every
    other experiment with a TypeError.
    """
    import inspect

    fn = _EXPERIMENTS.get(name)
    return fn is not None and param in inspect.signature(fn).parameters


def experiment_names() -> List[str]:
    return sorted(_EXPERIMENTS)


def run_experiment(name: str, **kwargs: Any) -> ExperimentResult:
    """Run the experiment registered under ``name``."""
    try:
        fn = _EXPERIMENTS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown experiment {name!r}; known: {experiment_names()}"
        ) from None
    return fn(**kwargs)


# ----------------------------------------------------------------------
# Shared builders
# ----------------------------------------------------------------------

def build_all_indexes(
    keys: np.ndarray,
    error: float,
    page_size: int,
    writable: bool = False,
) -> Dict[str, Any]:
    """The paper's four structures over one dataset, identically configured.

    ``writable=False`` builds the FITing-Tree/Fixed variants without insert
    buffers (pure lookup experiments); ``True`` gives both the paper's
    half-sized buffers.
    """
    if writable:
        fiting = FITingTree(keys, error=error, buffer_capacity=int(error) // 2)
        fixed = FixedPageIndex(
            keys, page_size=page_size, buffer_capacity=page_size // 2
        )
    else:
        fiting = FITingTree(keys, error=error, buffer_capacity=0)
        fixed = FixedPageIndex(keys, page_size=page_size, buffer_capacity=0)
    return {
        "fiting": fiting,
        "fixed": fixed,
        "full": FullIndex(keys),
        "binary": BinarySearchIndex(keys),
    }
