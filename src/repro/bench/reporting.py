"""Plain-text table rendering for the experiment harness.

The harness prints the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent between
``python -m repro.bench`` runs, the pytest benchmarks and EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["format_value", "format_table", "print_table"]


def format_value(value: Any) -> str:
    """Compact human-readable rendering for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:,.1f}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: List[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    rows: List[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    print(format_table(rows, columns, title))
    print()
