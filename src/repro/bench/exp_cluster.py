"""Cluster experiment: in-process vs multi-process shard dispatch.

Beyond the paper: measures what :mod:`repro.cluster` buys when the GIL is
the ceiling. The same workloads run against the same shard states through
two dispatch strategies:

* ``inproc`` — the :class:`~repro.engine.ShardedEngine`: every shard's
  vectorized work executes on one interpreter (one core, however many
  shards);
* ``cluster`` — a :class:`~repro.cluster.ClusterEngine` promoted from
  that very engine (``from_engine`` snapshots the shards, so both sides
  start bit-identical): each shard computes in its own worker process,
  batch keys and results crossing via shared-memory lanes.

Three workloads per worker count (1/2/4 by default):

* ``uniform-read`` — uniformly sampled present keys, the headline
  aggregate read-batch throughput;
* ``skewed-read`` — Zipf-sampled keys (hot ranks scattered over the key
  space), so per-shard sub-batch sizes are unbalanced;
* ``mixed`` — alternating insert chunks and read batches (~1:8 write:read
  by volume) against writable configs, exercising the insert fence.

Every read batch is verified **bit-identical** between the two modes
before any number is reported, and the mixed workload additionally
verifies post-write reads (read-your-writes across the process hop).

Interpretation: cluster dispatch pays a fixed per-batch IPC cost
(~control frame + two lane memcpys per worker) to unlock one core per
shard. It wins when per-batch compute dominates — large batches over
large shards on a multi-core box — and loses on small batches or a
single-core box. ``params.cpu_count`` records what the measurement
machine offered; the ROADMAP's >= 2x-at-4-workers bar is only meaningful
with >= 4 physical cores. Results are emitted to ``BENCH_cluster.json``
so the trajectory accumulates across PRs next to ``BENCH_engine.json``
and ``BENCH_serve.json``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.bench.harness import ExperimentResult, register_experiment
from repro.cluster import ClusterEngine
from repro.datasets import get
from repro.engine import ShardedEngine
from repro.workloads import uniform_lookups, zipf_lookups


def _assert_identical(a: np.ndarray, b: np.ndarray, context: str) -> None:
    if a.dtype != b.dtype or len(a) != len(b) or not all(
        x == y or (x is y) for x, y in zip(a, b)
    ):
        raise AssertionError(f"cluster diverged from in-process engine: {context}")


def _time_reads(engine: Any, queries: np.ndarray, batch_size: int) -> float:
    """Seconds to answer the whole query stream in ``batch_size`` chunks."""
    start = time.perf_counter()
    for i in range(0, len(queries), batch_size):
        engine.get_batch(queries[i : i + batch_size])
    return time.perf_counter() - start


def _run_read_workload(
    keys: np.ndarray,
    queries: np.ndarray,
    n_workers: int,
    error: float,
    batch_size: int,
    repeats: int,
) -> Dict[str, float]:
    """Best-of-``repeats`` read throughput for both modes, verified equal."""
    inproc = ShardedEngine(keys, n_shards=n_workers, error=error, buffer_capacity=0)
    inproc.warm()
    cluster = ClusterEngine.from_engine(inproc)
    try:
        cluster.warm()
        # Verification pass before any timing: EVERY batch of the stream
        # must be bit-identical between the two modes — the `identical`
        # field in the artifact asserts exactly this.
        for i in range(0, len(queries), batch_size):
            batch = queries[i : i + batch_size]
            _assert_identical(
                inproc.get_batch(batch),
                cluster.get_batch(batch),
                f"read batch @{i}",
            )
        inproc_s = min(_time_reads(inproc, queries, batch_size) for _ in range(repeats))
        cluster_s = min(
            _time_reads(cluster, queries, batch_size) for _ in range(repeats)
        )
    finally:
        cluster.close()
    return {"inproc": inproc_s, "cluster": cluster_s}


def _run_mixed_workload(
    keys: np.ndarray,
    queries: np.ndarray,
    n_workers: int,
    error: float,
    batch_size: int,
    seed: int,
) -> Dict[str, float]:
    """Interleaved insert/read rounds on both modes; every per-round read
    verified bit-identical in an untimed lock-step pass first."""
    insert_error = max(error * 8, 512.0)
    buffer = int(insert_error) // 2
    rng = np.random.default_rng(seed)
    n_rounds = max(1, len(queries) // batch_size)
    insert_chunks = [
        rng.uniform(keys[0], keys[-1], max(1, batch_size // 8))
        for _ in range(n_rounds)
    ]
    # Lock-step verification pass (untimed): both engines walk the same
    # insert/read interleaving and EVERY per-round read — including the
    # reads that land right after each write fence — must be
    # bit-identical before any timing is recorded.
    verify_inproc = ShardedEngine(
        keys, n_shards=n_workers, error=insert_error, buffer_capacity=buffer
    )
    verify_cluster = ClusterEngine.from_engine(verify_inproc)
    try:
        for r in range(n_rounds):
            verify_inproc.insert_batch(insert_chunks[r])
            verify_cluster.insert_batch(insert_chunks[r])
            batch = queries[r * batch_size : (r + 1) * batch_size]
            _assert_identical(
                verify_inproc.get_batch(batch),
                verify_cluster.get_batch(batch),
                f"mixed round {r}",
            )
    finally:
        verify_cluster.close()

    timings: Dict[str, float] = {}
    for mode in ("inproc", "cluster"):
        engine: Any = ShardedEngine(
            keys, n_shards=n_workers, error=insert_error, buffer_capacity=buffer
        )
        if mode == "cluster":
            engine = ClusterEngine.from_engine(engine)
        try:
            engine.warm()
            start = time.perf_counter()
            for r in range(n_rounds):
                engine.insert_batch(insert_chunks[r])
                engine.get_batch(queries[r * batch_size : (r + 1) * batch_size])
            timings[mode] = time.perf_counter() - start
        finally:
            if mode == "cluster":
                engine.close()
    ops = n_rounds * (batch_size + max(1, batch_size // 8))
    return dict(timings) | {"ops": float(ops)}


@register_experiment("cluster")
def cluster(
    n: int = 1_000_000,
    seed: int = 0,
    n_queries: Optional[int] = None,
    batch_size: int = 131_072,
    workers: Sequence[int] = (1, 2, 4),
    error: float = 64.0,
    repeats: int = 5,
    dataset: str = "uniform",
    out: Optional[str] = "BENCH_cluster.json",
) -> ExperimentResult:
    """Aggregate batch throughput: ShardedEngine vs ClusterEngine."""
    if n_queries is None:
        n_queries = min(n, 4 * batch_size)
    batch_size = min(batch_size, n_queries)
    keys = get(dataset, n=n, seed=seed)
    streams = {
        "uniform-read": uniform_lookups(keys, n_queries, seed=seed + 1),
        "skewed-read": zipf_lookups(keys, n_queries, seed=seed + 2),
    }
    cpu_count = os.cpu_count() or 1

    rows: List[Dict[str, Any]] = []
    notes: List[str] = []
    bench_rows: List[Dict[str, Any]] = []
    headline: Dict[int, float] = {}
    for w in workers:
        for workload, stream in streams.items():
            t = _run_read_workload(keys, stream, w, error, batch_size, repeats)
            speedup = t["inproc"] / t["cluster"] if t["cluster"] else 0.0
            if workload == "uniform-read":
                headline[w] = speedup
            for mode in ("inproc", "cluster"):
                seconds = t[mode]
                row = {
                    "workload": workload,
                    "workers": w,
                    "mode": mode,
                    "ops_per_second": round(len(stream) / seconds, 0),
                    "wall_ns_per_op": round(seconds * 1e9 / len(stream), 1),
                    "speedup_vs_inproc": (
                        1.0 if mode == "inproc" else round(speedup, 2)
                    ),
                    "identical": True,
                }
                rows.append(row)
                bench_rows.append(dict(row))
        mixed = _run_mixed_workload(keys, streams["uniform-read"], w, error,
                                    batch_size, seed + 3)
        ops = mixed.pop("ops")
        mixed_speedup = mixed["inproc"] / mixed["cluster"] if mixed["cluster"] else 0.0
        for mode in ("inproc", "cluster"):
            row = {
                "workload": "mixed",
                "workers": w,
                "mode": mode,
                "ops_per_second": round(ops / mixed[mode], 0),
                "wall_ns_per_op": round(mixed[mode] * 1e9 / ops, 1),
                "speedup_vs_inproc": (
                    1.0 if mode == "inproc" else round(mixed_speedup, 2)
                ),
                "identical": True,
            }
            rows.append(row)
            bench_rows.append(dict(row))
        notes.append(
            f"{w} worker(s): cluster {headline[w]:.2f}x on uniform reads, "
            f"{mixed_speedup:.2f}x on mixed read/insert (all results "
            f"bit-identical to in-process)"
        )

    best_w = max(headline, key=lambda w: headline[w])
    note = (
        f"headline: {headline[best_w]:.2f}x aggregate read-batch throughput "
        f"at {best_w} workers on {cpu_count} CPU core(s)"
    )
    if headline[best_w] < 2.0:
        note += (
            "; the >= 2x bar needs real multi-core parallelism to buy the "
            "IPC cost back (cpu_count above is what this box offered)"
        )
    notes.append(note)

    params: Dict[str, Any] = {
        "n": n,
        "n_queries": n_queries,
        "batch_size": batch_size,
        "workers": list(workers),
        "error": error,
        "repeats": repeats,
        "dataset": dataset,
        "seed": seed,
        "cpu_count": cpu_count,
    }
    if out:
        with open(out, "w") as fh:
            json.dump(
                {"experiment": "cluster", "params": params, "rows": bench_rows},
                fh,
                indent=2,
            )
        notes.append(f"wrote {out}")
    return ExperimentResult(
        name="cluster",
        title="Shard dispatch: in-process (GIL-bound) vs multi-process",
        rows=rows,
        notes=notes,
        params=params,
    )
