"""Figure 9: worst-case step data — the data shape and the size cliff.

Figure 9a is the staircase itself (every key repeated ``step`` times);
Figure 9b shows index size vs error threshold: below the step size the
FITing-Tree degenerates to one segment per ``error+1`` slots (matching the
fixed-size index, still far below the full index); at/above the step size a
single segment suffices and the index size collapses by orders of
magnitude.
"""

from __future__ import annotations

from typing import Sequence

from repro.baselines import FixedPageIndex, FullIndex
from repro.bench.harness import ExperimentResult, register_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import step_data


@register_experiment("fig9")
def fig9(
    n: int = 100_000,
    seed: int = 0,
    step: int = 100,
    errors: Sequence[int] = (10, 25, 50, 99, 150, 1000, 10_000),
) -> ExperimentResult:
    keys = step_data(n, step=step)
    full_bytes = FullIndex(keys).model_bytes()
    rows = []
    sizes = {}
    for error in errors:
        fiting = FITingTree(keys, error=error, buffer_capacity=0)
        fixed = FixedPageIndex(keys, page_size=int(error), buffer_capacity=0)
        sizes[error] = fiting.model_bytes()
        rows.append(
            {
                "error": error,
                "fiting_segments": fiting.n_segments,
                "fiting_kb": round(fiting.model_bytes() / 1024.0, 3),
                "fixed_kb": round(fixed.model_bytes() / 1024.0, 3),
                "full_kb": round(full_bytes / 1024.0, 3),
            }
        )
    below = [e for e in errors if e < step - 1]
    at_or_above = [e for e in errors if e >= step - 1]
    notes = []
    if below and at_or_above:
        cliff = sizes[below[-1]] / max(sizes[at_or_above[0]], 1)
        notes.append(
            f"size cliff at error >= step-1 ({step - 1}): "
            f"{sizes[below[-1]]:,}B -> {sizes[at_or_above[0]]:,}B "
            f"({cliff:.0f}x collapse)"
        )
    notes.append(
        "below the step size the fiting index tracks the fixed index "
        "(worst case); above it a single segment suffices (paper 7.2)."
    )
    return ExperimentResult(
        name="fig9",
        title="Worst-case step data: index size vs error",
        rows=rows,
        notes=notes,
        params={"n": n, "step": step},
    )
