"""Baseline index structures the paper compares against.

* :class:`FullIndex` — dense B+ tree, one entry per distinct key (the
  best-case lookup baseline whose size the FITing-Tree attacks).
* :class:`FixedPageIndex` — sparse B+ tree over fixed-size pages with full
  in-page binary search (the paper's main comparison point).
* :class:`BinarySearchIndex` — no index at all; the zero-size extreme.

All three share the exact same B+ tree substrate as the FITing-Tree, as the
paper's methodology requires.
"""

from repro.baselines.binary_search import BinarySearchIndex
from repro.baselines.fixed_index import FixedPageIndex
from repro.baselines.full_index import FullIndex

__all__ = ["BinarySearchIndex", "FixedPageIndex", "FullIndex"]
