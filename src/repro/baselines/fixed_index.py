"""The "Fixed" baseline: a sparse B+ tree over fixed-size pages.

This is the paper's main comparison point (the "Fixed" curves in Figures
6/7/9/11): table data is chunked into pages of a constant size, the B+ tree
indexes only the first key of each page, and a lookup binary-searches the
whole page. Like the FITing-Tree it buffers inserts per page and splits a
page whose buffer fills up — the paper gives it the same buffering courtesy
("half of the page size is used as the buffer size") so the insert
comparison is fair.

Everything except the chunking policy and the in-page search is shared with
the FITing-Tree via :class:`repro.core.paged_index.PagedIndexBase`, which is
exactly the fairness the paper's evaluation methodology demands.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

import numpy as np

from repro.btree import DEFAULT_BRANCHING
from repro.core.errors import InvalidParameterError
from repro.core.page import SegmentPage
from repro.core.paged_index import PagedIndexBase

__all__ = ["FixedPageIndex"]


class FixedPageIndex(PagedIndexBase):
    """Sparse clustered index with fixed-size pages and full binary search.

    Parameters
    ----------
    keys, values:
        As for :class:`repro.core.fiting_tree.FITingTree`.
    page_size:
        Elements per page. The paper's experiments set this equal to the
        FITing-Tree's error threshold when comparing the two.
    buffer_capacity:
        Per-page insert buffer; defaults to ``page_size // 2`` (the paper's
        setting). ``0`` builds a read-only index.
    """

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        page_size: int = 256,
        buffer_capacity: Optional[int] = None,
        branching: int = DEFAULT_BRANCHING,
        fill: float = 1.0,
        counter: Any = None,
    ) -> None:
        if page_size < 1:
            raise InvalidParameterError(f"page_size must be >= 1, got {page_size}")
        if buffer_capacity is None:
            buffer_capacity = page_size // 2
        if buffer_capacity < 0:
            raise InvalidParameterError(
                f"buffer_capacity must be >= 0, got {buffer_capacity}"
            )
        self.page_size = int(page_size)
        self.buffer_capacity = int(buffer_capacity)
        #: Binary-search the whole page: no interpolation window.
        self.page_search_error = math.inf
        #: The tree's 16 B/entry already covers a fixed page's metadata.
        self.metadata_bytes_per_page = 0
        super().__init__(
            keys, values, branching=branching, fill=fill, counter=counter
        )

    def _make_pages(
        self, keys: np.ndarray, values: np.ndarray
    ) -> List[SegmentPage]:
        n = len(keys)
        n_chunks = max(1, math.ceil(n / self.page_size))
        bounds = np.linspace(0, n, n_chunks + 1).astype(np.int64)
        pages: List[SegmentPage] = []
        for a, b in zip(bounds, bounds[1:]):
            if b > a:
                pages.append(
                    SegmentPage(float(keys[a]), 0.0, keys[a:b], values[a:b])
                )
        return pages

    def _snapshot_params(self) -> Dict[str, Any]:
        """Constructor kwargs reproducing this index's configuration
        (see :meth:`repro.core.paged_index.PagedIndexBase.to_state`)."""
        return {
            "page_size": self.page_size,
            "buffer_capacity": self.buffer_capacity,
            "branching": self._tree.branching,
            "fill": self._fill,
        }

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out.update(page_size=self.page_size)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FixedPageIndex(n={len(self)}, pages={self.n_pages}, "
            f"page_size={self.page_size})"
        )
