"""The "Binary" baseline: binary search over the sorted data, zero index.

The paper includes plain binary search as the extreme point of the
size/latency trade-off: it stores no index at all ("its size is zero"), so
its lookup cost is ``log2(n)`` random accesses into the data itself. It is
also the behaviour a FITing-Tree converges to when the error threshold
reaches the data size (one giant segment).

Inserts/deletes are supported for API parity but are O(n) array edits —
binary search is a read-only baseline in the paper and in the benchmarks.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    NotSortedError,
)

__all__ = ["BinarySearchIndex"]


class BinarySearchIndex:
    """Sorted array + ``searchsorted``; ``model_bytes() == 0``."""

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        counter: Any = None,
    ) -> None:
        self.counter = counter
        if keys is None:
            keys = np.empty(0, dtype=np.float64)
        self._keys = np.asarray(keys, dtype=np.float64).copy()
        if self._keys.size > 1 and np.any(np.diff(self._keys) < 0):
            raise NotSortedError("build keys must be sorted ascending")
        self._auto_rowid = values is None
        if values is None:
            values = np.arange(len(self._keys), dtype=np.int64)
        elif len(values) != len(self._keys):
            raise InvalidParameterError(
                f"values length {len(values)} != keys length {len(self._keys)}"
            )
        self._values = np.asarray(values).copy()
        self._next_rowid = len(self._keys)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._keys)

    def model_bytes(self) -> int:
        """Binary search keeps no auxiliary structure at all."""
        return 0

    def stats(self) -> Dict[str, Any]:
        return {"n": len(self._keys), "model_bytes": 0}

    def _count_search(self) -> None:
        if self.counter is not None:
            self.counter.op()
            self.counter.segment_binary_search(len(self._keys))

    def _first_index(self, key: float) -> int:
        i = int(np.searchsorted(self._keys, key, side="left"))
        if i < len(self._keys) and self._keys[i] == key:
            return i
        return -1

    def get(self, key: float, default: Any = None) -> Any:
        self._count_search()
        i = self._first_index(float(key))
        return self._values[i] if i >= 0 else default

    def __contains__(self, key: float) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __getitem__(self, key: float) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyNotFoundError(key)
        return value

    def lookup_all(self, key: float) -> List[Any]:
        self._count_search()
        key = float(key)
        lo = int(np.searchsorted(self._keys, key, side="left"))
        hi = int(np.searchsorted(self._keys, key, side="right"))
        return [self._values[i] for i in range(lo, hi)]

    def bulk_lookup(self, queries, default: Any = None) -> List[Any]:
        queries = np.asarray(queries, dtype=np.float64)
        idx = np.searchsorted(self._keys, queries, side="left")
        out: List[Any] = []
        n = len(self._keys)
        for q, i in zip(queries, idx):
            if self.counter is not None:
                self.counter.op()
                self.counter.segment_binary_search(n)
            if i < n and self._keys[i] == q:
                out.append(self._values[i])
            else:
                out.append(default)
        return out

    def range_items(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[float, Any]]:
        self._count_search()
        n = len(self._keys)
        a = 0
        if lo is not None:
            side = "left" if include_lo else "right"
            a = int(np.searchsorted(self._keys, lo, side=side))
        b = n
        if hi is not None:
            side = "right" if include_hi else "left"
            b = int(np.searchsorted(self._keys, hi, side=side))
        for i in range(a, b):
            yield float(self._keys[i]), self._values[i]

    def items(self) -> Iterator[Tuple[float, Any]]:
        return self.range_items()

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    # ------------------------------------------------------------------

    def insert(self, key: float, value: Any = None) -> None:
        """O(n) sorted insert (API parity; not benchmarked for writes)."""
        key = float(key)
        if value is None and self._auto_rowid:
            value = self._next_rowid
            self._next_rowid += 1
        if self.counter is not None:
            self.counter.op()
        i = int(np.searchsorted(self._keys, key, side="right"))
        self._keys = np.insert(self._keys, i, key)
        self._values = np.insert(self._values, i, value)

    def delete(self, key: float) -> Any:
        key = float(key)
        if self.counter is not None:
            self.counter.op()
        i = self._first_index(key)
        if i < 0:
            raise KeyNotFoundError(key)
        value = self._values[i]
        self._keys = np.delete(self._keys, i)
        self._values = np.delete(self._values, i)
        return value

    def validate(self) -> None:
        if len(self._keys) != len(self._values):
            raise InvalidParameterError("keys/values length mismatch")
        if len(self._keys) > 1 and np.any(np.diff(self._keys) < 0):
            raise InvalidParameterError("keys not sorted")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BinarySearchIndex(n={len(self._keys)})"
