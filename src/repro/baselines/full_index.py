"""The "Full" baseline: a dense B+ tree with one entry per distinct key.

The paper treats the full (dense) index as the best-case lookup baseline:
every distinct key has its own tree entry, so lookups are a single tree
descent with no in-page search, at the cost of an index that grows linearly
with the number of distinct keys — the storage overhead the FITing-Tree is
designed to eliminate.

Duplicates share one tree entry whose value is the ordered list of payloads
("one entry (key and pointer) for each distinct value", Section 1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.btree import BPlusTree, DEFAULT_BRANCHING
from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    NotSortedError,
)

__all__ = ["FullIndex"]


class _Multi:
    """Internal wrapper marking a duplicate-key entry (list of values)."""

    __slots__ = ("values",)

    def __init__(self, values: List[Any]) -> None:
        self.values = values


class FullIndex:
    """Dense clustered index: every distinct key is a B+ tree entry."""

    def __init__(
        self,
        keys=None,
        values=None,
        *,
        branching: int = DEFAULT_BRANCHING,
        fill: float = 1.0,
        counter: Any = None,
    ) -> None:
        self.counter = counter
        self._tree = BPlusTree(branching=branching, counter=counter)
        self._n = 0

        if keys is None:
            keys = np.empty(0, dtype=np.float64)
        keys = np.asarray(keys, dtype=np.float64)
        if keys.size > 1 and np.any(np.diff(keys) < 0):
            raise NotSortedError("build keys must be sorted ascending")
        self._auto_rowid = values is None
        if values is None:
            values = np.arange(len(keys), dtype=np.int64)
        elif len(values) != len(keys):
            raise InvalidParameterError(
                f"values length {len(values)} != keys length {len(keys)}"
            )
        self._next_rowid = len(keys)

        if len(keys):
            pairs: List[Tuple[float, Any]] = []
            uniq, starts = np.unique(keys, return_index=True)
            bounds = list(starts) + [len(keys)]
            for key, a, b in zip(uniq, bounds, bounds[1:]):
                if b - a == 1:
                    pairs.append((float(key), values[a]))
                else:
                    pairs.append((float(key), _Multi([values[i] for i in range(a, b)])))
            self._tree.bulk_load(pairs, fill=fill)
            self._n = len(keys)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def n_entries(self) -> int:
        """Distinct keys indexed (tree entries)."""
        return len(self._tree)

    @property
    def height(self) -> int:
        return self._tree.height

    def model_bytes(self) -> int:
        """Modeled size: the dense tree plus per-duplicate row pointers.

        Every distinct key costs a 16-byte tree entry; each *additional*
        occurrence of a duplicated key still needs an 8-byte row pointer in
        the entry's posting list — a dense index must reference all
        matching rows. (This is what keeps the full index the largest
        structure even on duplicate-heavy data such as the Figure 9 step
        distribution.)
        """
        duplicates = self._n - self.n_entries
        return self._tree.model_bytes() + 8 * max(0, duplicates)

    def stats(self) -> Dict[str, Any]:
        return {
            "n": self._n,
            "n_entries": self.n_entries,
            "height": self.height,
            "model_bytes": self.model_bytes(),
        }

    # ------------------------------------------------------------------

    def get(self, key: float, default: Any = None) -> Any:
        if self.counter is not None:
            self.counter.op()
        stored = self._tree.get(float(key), default)
        if isinstance(stored, _Multi):
            return stored.values[0]
        return stored

    def __contains__(self, key: float) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __getitem__(self, key: float) -> Any:
        sentinel = object()
        value = self.get(key, sentinel)
        if value is sentinel:
            raise KeyNotFoundError(key)
        return value

    def lookup_all(self, key: float) -> List[Any]:
        if self.counter is not None:
            self.counter.op()
        sentinel = object()
        stored = self._tree.get(float(key), sentinel)
        if stored is sentinel:
            return []
        if isinstance(stored, _Multi):
            return list(stored.values)
        return [stored]

    def bulk_lookup(self, queries, default: Any = None) -> List[Any]:
        return [self.get(q, default) for q in np.asarray(queries, dtype=np.float64)]

    def range_items(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[float, Any]]:
        if self.counter is not None:
            self.counter.op()
        for key, stored in self._tree.range_items(lo, hi, include_lo, include_hi):
            if isinstance(stored, _Multi):
                for value in stored.values:
                    yield key, value
            else:
                yield key, stored

    def items(self) -> Iterator[Tuple[float, Any]]:
        return self.range_items()

    def keys(self) -> Iterator[float]:
        for k, _ in self.items():
            yield k

    # ------------------------------------------------------------------

    def _resolve_value(self, value: Any) -> Any:
        if value is not None or not self._auto_rowid:
            return value
        rowid = self._next_rowid
        self._next_rowid += 1
        return rowid

    def insert(self, key: float, value: Any = None) -> None:
        key = float(key)
        value = self._resolve_value(value)
        if self.counter is not None:
            self.counter.op()
        sentinel = object()
        stored = self._tree.get(key, sentinel)
        if stored is sentinel:
            self._tree.insert(key, value)
        elif isinstance(stored, _Multi):
            stored.values.append(value)
        else:
            self._tree.insert(key, _Multi([stored, value]))
        self._n += 1

    def delete(self, key: float) -> Any:
        """Remove one occurrence of ``key``; returns its value."""
        key = float(key)
        if self.counter is not None:
            self.counter.op()
        sentinel = object()
        stored = self._tree.get(key, sentinel)
        if stored is sentinel:
            raise KeyNotFoundError(key)
        if isinstance(stored, _Multi):
            value = stored.values.pop(0)
            if len(stored.values) == 1:
                self._tree.insert(key, stored.values[0])
        else:
            value = stored
            self._tree.delete(key)
        self._n -= 1
        return value

    def validate(self) -> None:
        self._tree.validate()
        total = 0
        for _, stored in self._tree.items():
            total += len(stored.values) if isinstance(stored, _Multi) else 1
        if total != self._n:
            raise InvalidParameterError(
                f"element count mismatch: tree={total} cached={self._n}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FullIndex(n={self._n}, entries={self.n_entries})"
