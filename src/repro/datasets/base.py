"""Dataset registry: named, seeded generators for every evaluation dataset.

The paper evaluates on real datasets (Weblogs, IoT, OSM/Maps, NYC Taxi) that
are not available offline; each generator here is a synthetic substitute
engineered to reproduce the property the paper identifies as decisive for
FITing-Tree performance: the *periodicity* of the key-to-position function
(Section 7.1.1, Figure 8). DESIGN.md documents each substitution.

Usage
-----
>>> from repro.datasets import get, names
>>> keys = get("iot", n=100_000, seed=1)   # sorted float64 keys
>>> sorted(names())[:3]
['adversarial', 'iot', 'lognormal']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["DatasetSpec", "register", "get", "spec", "names"]


@dataclass(frozen=True)
class DatasetSpec:
    """A registered dataset generator.

    ``builder(n, seed)`` must return a *sorted ascending* float64 array of
    exactly ``n`` keys, deterministically for a given ``(n, seed)``.
    """

    name: str
    builder: Callable[[int, int], np.ndarray]
    description: str
    paper_counterpart: str


_REGISTRY: Dict[str, DatasetSpec] = {}


def register(
    name: str,
    builder: Callable[[int, int], np.ndarray],
    description: str,
    paper_counterpart: str,
) -> None:
    """Register a generator under ``name`` (used by dataset modules)."""
    if name in _REGISTRY:
        raise InvalidParameterError(f"dataset {name!r} already registered")
    _REGISTRY[name] = DatasetSpec(name, builder, description, paper_counterpart)


def spec(name: str) -> DatasetSpec:
    """The :class:`DatasetSpec` registered under ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown dataset {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def get(name: str, n: int = 100_000, seed: int = 0) -> np.ndarray:
    """Generate dataset ``name`` with ``n`` keys; sorted, deterministic."""
    if n < 0:
        raise InvalidParameterError(f"n must be >= 0, got {n}")
    keys = spec(name).builder(n, seed)
    if len(keys) != n:
        raise InvalidParameterError(
            f"dataset {name!r} produced {len(keys)} keys, wanted {n}"
        )
    return keys


def names() -> List[str]:
    """Registered dataset names."""
    return sorted(_REGISTRY)
