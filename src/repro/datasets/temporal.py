"""Timestamp-like datasets: Weblogs, IoT and NYC-Taxi pickup times.

All three of the paper's timestamp datasets are event streams driven by
human activity; their key property is periodic rate variation (Figure 1's
"weekend / day / night" regimes). We model each as a non-homogeneous
Poisson process with a piecewise-constant hourly rate profile and draw ``n``
arrivals by (1) distributing events over hour bins with a multinomial on
the normalized profile and (2) placing events uniformly inside their bin.
This reproduces exactly the structure FITing-Tree exploits: near-linear
stretches inside a rate regime, sharp slope changes between regimes.

Profiles:

* **weblogs** — 14 years of departmental web requests: diurnal cycle,
  weekday/weekend cycle, academic-year/summer seasonality, plus mild
  long-term traffic growth (the real log's 715M requests over 14 years).
* **iot** — 3 months of building sensors: strong working-hours activity,
  near-silent nights, quiet weekends (Figure 1's visible staircase).
* **taxi_pickup_time** — 1 month of NYC taxi pickups: double rush-hour
  peaks, late-night lull, busier weekends at night.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import register

__all__ = [
    "weblogs",
    "iot",
    "taxi_pickup_time",
    "poisson_from_hourly_profile",
]

_HOUR = 3600.0
_DAY = 24 * _HOUR
_WEEK = 7 * _DAY


def poisson_from_hourly_profile(
    n: int, hourly_rates: np.ndarray, seed: int
) -> np.ndarray:
    """Draw ``n`` sorted arrival times from a piecewise-constant rate.

    ``hourly_rates[i]`` is the (relative) rate during hour ``i``; the
    absolute scale is irrelevant because we condition on ``n`` total events.
    """
    rng = np.random.default_rng(seed)
    rates = np.asarray(hourly_rates, dtype=np.float64)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    total = rates.sum()
    if total <= 0:
        raise ValueError("rate profile must have positive mass")
    counts = rng.multinomial(n, rates / total)
    hours = np.repeat(np.arange(len(rates), dtype=np.float64), counts)
    times = (hours + rng.random(n)) * _HOUR
    times.sort()
    return times


def _diurnal(hour_of_day: np.ndarray, night: float, peak: float) -> np.ndarray:
    """Smooth day/night profile: low at night, high mid-day."""
    phase = 2.0 * np.pi * (hour_of_day - 14.0) / 24.0  # peak ~2pm
    shape = 0.5 * (1.0 + np.cos(phase))  # 1 at peak, 0 at 2am
    return night + (peak - night) * shape**2


def weblogs(n: int, seed: int = 0, years: int = 14) -> np.ndarray:
    """Web-request timestamps: diurnal + weekly + academic-year cycles."""
    hours = np.arange(years * 365 * 24, dtype=np.float64)
    hour_of_day = hours % 24
    day = hours // 24
    day_of_week = day % 7
    day_of_year = day % 365

    rate = _diurnal(hour_of_day, night=0.15, peak=1.0)
    rate *= np.where(day_of_week >= 5, 0.45, 1.0)  # weekends quieter
    # Academic year: summer (days ~150-240) and winter break (~350-20) dips.
    summer = (day_of_year >= 150) & (day_of_year < 240)
    winter = (day_of_year >= 350) | (day_of_year < 20)
    rate *= np.where(summer, 0.5, 1.0) * np.where(winter, 0.7, 1.0)
    # Mild long-term growth in traffic over the years.
    rate *= 1.0 + day / (years * 365.0)
    return poisson_from_hourly_profile(n, rate, seed)


def iot(n: int, seed: int = 0, days: int = 90) -> np.ndarray:
    """Building-sensor event timestamps: Figure 1's day/night staircase."""
    hours = np.arange(days * 24, dtype=np.float64)
    hour_of_day = hours % 24
    day_of_week = (hours // 24) % 7

    # Office building: almost nothing at night, sharp morning ramp, busy
    # working hours, evening tail; weekends nearly silent.
    working = (hour_of_day >= 8) & (hour_of_day < 19)
    evening = (hour_of_day >= 19) & (hour_of_day < 23)
    rate = np.where(working, 1.0, np.where(evening, 0.12, 0.015))
    rate = rate * np.where(day_of_week >= 5, 0.06, 1.0)
    return poisson_from_hourly_profile(n, rate, seed)


def taxi_pickup_time(n: int, seed: int = 0, days: int = 31) -> np.ndarray:
    """NYC taxi pickup times: double rush-hour peaks, late-night lull."""
    hours = np.arange(days * 24, dtype=np.float64)
    hour_of_day = hours % 24
    day_of_week = (hours // 24) % 7

    morning = np.exp(-0.5 * ((hour_of_day - 8.0) / 1.5) ** 2)
    evening = np.exp(-0.5 * ((hour_of_day - 18.5) / 2.5) ** 2)
    base = 0.2 + morning + 1.2 * evening
    # Weekend: no commute peaks but a strong night-life bump.
    night_life = np.exp(-0.5 * (((hour_of_day - 23.5) % 24) / 2.0) ** 2)
    weekend_rate = 0.35 + 1.1 * night_life
    rate = np.where(day_of_week >= 5, weekend_rate, base)
    return poisson_from_hourly_profile(n, rate, seed)


register(
    "weblogs",
    weblogs,
    "web-request timestamps, diurnal/weekly/seasonal cycles (14y)",
    "Weblogs [35]: 715M department web-server requests over 14 years",
)
register(
    "iot",
    iot,
    "building-sensor event timestamps, sharp day/night bursts (90d)",
    "IoT [17]: 5M readings from ~100 sensors in an academic building",
)
register(
    "taxi_pickup_time",
    taxi_pickup_time,
    "taxi pickup timestamps, rush-hour peaks (31d)",
    "NYC Taxi [24]: pickup time attribute",
)
