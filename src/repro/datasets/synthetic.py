"""Generic synthetic datasets: uniform, lognormal, and the worst-case step.

``step_data`` is the paper's Section 7.2 adversarial distribution: every
key repeats ``step`` times, so the key-to-position function is a staircase
with riser height ``step``. An error threshold below ``step - 1`` forces
one segment per ``error + 1`` positions (the worst case Theorem 3.1
permits); a threshold of at least ``step - 1`` lets a single segment cover
everything — the cliff Figure 9b shows.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.base import register

__all__ = ["uniform", "lognormal", "step_data"]


def uniform(n: int, seed: int = 0, lo: float = 0.0, hi: float = 1e9) -> np.ndarray:
    """Sorted uniform keys: the friendliest case (near-linear CDF)."""
    rng = np.random.default_rng(seed)
    keys = rng.uniform(lo, hi, size=n)
    keys.sort()
    return keys


def lognormal(
    n: int, seed: int = 0, mean: float = 0.0, sigma: float = 2.0
) -> np.ndarray:
    """Sorted lognormal keys: heavy right tail, strongly curved CDF."""
    rng = np.random.default_rng(seed)
    keys = rng.lognormal(mean, sigma, size=n)
    keys.sort()
    return keys


def step_data(n: int, seed: int = 0, step: int = 100) -> np.ndarray:
    """Paper Figure 9a worst case: every key repeated ``step`` times.

    ``seed`` is accepted for registry uniformity but unused — the worst
    case is deterministic by construction.
    """
    del seed
    n_steps = -(-n // step)  # ceil
    keys = np.repeat(np.arange(n_steps, dtype=np.float64) * step, step)
    return keys[:n]


register(
    "uniform",
    uniform,
    "uniform random keys (near-linear best case)",
    "synthetic control (not in the paper's figures)",
)
register(
    "lognormal",
    lognormal,
    "lognormal keys (heavy-tailed)",
    "synthetic control (not in the paper's figures)",
)
register(
    "step",
    step_data,
    "worst-case staircase, step size 100",
    "Section 7.2 synthetic worst case (Figure 9)",
)
