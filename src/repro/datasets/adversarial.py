"""Appendix A.3: the input on which ShrinkingCone is not competitive.

The paper proves the greedy algorithm can be arbitrarily worse than optimal
by constructing, for an error threshold ``E``:

1. three keys ``x1 < x2 < x3`` with one location each, spaced ``E/2`` apart;
2. a key ``x4 = x3 + 1/E`` repeated ``E + 1`` times, then a single key
   ``x5 = x4 + 1/E``;
3. ``N`` repetitions of the pattern: a key ``prev + E`` repeated ``E + 1``
   times followed by a single key ``1/E`` further;
4. a final key ``E/2`` beyond the last.

ShrinkingCone is forced to cut a segment at every repeated-key cliff and
produces ``N + 2`` segments, while an optimal segmentation needs only two
(the first key alone, then one long segment whose line threads every
cliff). ``adversarial_keys`` builds exactly this input; the tests and the
``a3`` bench verify both counts.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.datasets.base import register

__all__ = ["adversarial_keys", "adversarial_n_for_elements"]


def adversarial_keys(n_patterns: int, error: int = 100) -> np.ndarray:
    """Keys of the A.3 construction with ``n_patterns`` repetitions.

    Total elements: ``3 + (E + 2) + n_patterns * (E + 2) + 1``.
    """
    if error < 2:
        raise InvalidParameterError(f"error must be >= 2, got {error}")
    if n_patterns < 0:
        raise InvalidParameterError(f"n_patterns must be >= 0, got {n_patterns}")
    e = float(error)
    keys = [0.0, e / 2.0, e]  # x1, x2, x3 (one location each)
    x = e + 1.0 / e  # x4
    keys.extend([x] * (error + 1))
    x += 1.0 / e  # x5
    keys.append(x)
    for _ in range(n_patterns):
        x += e
        keys.extend([x] * (error + 1))
        x += 1.0 / e
        keys.append(x)
    x += e / 2.0
    keys.append(x)
    return np.asarray(keys, dtype=np.float64)


def adversarial_n_for_elements(n_elements: int, error: int = 100) -> int:
    """Largest pattern count whose construction stays within ``n_elements``."""
    fixed = 3 + (error + 2) + 1
    per_pattern = error + 2
    return max(0, (n_elements - fixed) // per_pattern)


def _registry_builder(n: int, seed: int) -> np.ndarray:
    """Registry adapter: trim/construct to exactly ``n`` elements (E=100)."""
    del seed
    error = 100
    patterns = adversarial_n_for_elements(n, error)
    keys = adversarial_keys(patterns, error)
    if len(keys) < n:  # pad by extending the tail linearly, keeps sortedness
        extra = n - len(keys)
        tail = keys[-1] + np.arange(1, extra + 1, dtype=np.float64) * error
        keys = np.concatenate([keys, tail])
    return keys[:n]


register(
    "adversarial",
    _registry_builder,
    "A.3 non-competitiveness construction (E=100)",
    "Appendix A.3 proof input",
)
