"""Spatial datasets: OSM/Maps longitudes and NYC-Taxi drop coordinates.

* **maps** / **osm_lon** — longitudes of user-maintained map features. The
  paper observes these are "relatively linear and do not contain many
  periodic trends" at small scales (Figure 8), i.e. locally smooth density.
  We model a mixture of broad continental clusters over a uniform ocean
  floor; the many wide components make the sorted CDF smooth at small
  scales while still bending at continental boundaries.
* **taxi_drop_lat / taxi_drop_lon** — drop-off coordinates concentrated in
  the NYC bounding box: tight Gaussian mixtures around boroughs/airports
  with heavy mass near Manhattan, giving locally steep, strongly non-linear
  CDFs (the paper's Table 1 shows these need relatively many segments at
  small errors).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.datasets.base import register

__all__ = ["mixture_sorted", "maps_longitude", "taxi_drop_lat", "taxi_drop_lon"]


def mixture_sorted(
    n: int,
    seed: int,
    components: Sequence[Tuple[float, float, float]],
    uniform_weight: float = 0.0,
    uniform_range: Tuple[float, float] = (0.0, 1.0),
    clip: Tuple[float, float] | None = None,
) -> np.ndarray:
    """Sorted draws from a Gaussian mixture plus an optional uniform floor.

    ``components`` are ``(weight, mean, std)`` triples; weights need not be
    normalized (the uniform floor's weight joins the normalization).
    """
    rng = np.random.default_rng(seed)
    if n == 0:
        return np.empty(0, dtype=np.float64)
    weights = np.array([w for w, _, _ in components], dtype=np.float64)
    weights = np.append(weights, uniform_weight)
    weights /= weights.sum()
    counts = rng.multinomial(n, weights)
    parts = [
        rng.normal(mean, std, size=count)
        for (_, mean, std), count in zip(components, counts[:-1])
    ]
    parts.append(rng.uniform(*uniform_range, size=counts[-1]))
    out = np.concatenate(parts)
    if clip is not None:
        np.clip(out, clip[0], clip[1], out=out)
    out.sort()
    return out


#: Rough longitudes (degrees) of feature-dense regions: Europe, East Asia,
#: South Asia, US East/West, Japan, Brazil, West Africa.
_WORLD_COMPONENTS = (
    (0.30, 10.0, 12.0),
    (0.14, 105.0, 12.0),
    (0.08, 78.0, 8.0),
    (0.12, -80.0, 8.0),
    (0.07, -118.0, 6.0),
    (0.09, 138.0, 4.0),
    (0.07, -47.0, 8.0),
    (0.04, 3.0, 6.0),
)


def maps_longitude(n: int, seed: int = 0) -> np.ndarray:
    """OSM feature longitudes: broad continental clusters + uniform ocean."""
    return mixture_sorted(
        n,
        seed,
        _WORLD_COMPONENTS,
        uniform_weight=0.09,
        uniform_range=(-180.0, 180.0),
        clip=(-180.0, 180.0),
    )


_NYC_LAT_COMPONENTS = (
    (0.45, 40.750, 0.020),  # Midtown
    (0.20, 40.715, 0.015),  # Downtown
    (0.15, 40.780, 0.025),  # Upper East/West
    (0.10, 40.690, 0.030),  # Brooklyn
    (0.05, 40.773, 0.008),  # LGA
    (0.05, 40.645, 0.008),  # JFK
)

_NYC_LON_COMPONENTS = (
    (0.45, -73.985, 0.015),
    (0.20, -74.005, 0.010),
    (0.15, -73.960, 0.020),
    (0.10, -73.950, 0.035),
    (0.05, -73.873, 0.008),
    (0.05, -73.785, 0.008),
)


def taxi_drop_lat(n: int, seed: int = 0) -> np.ndarray:
    """Taxi drop-off latitudes: tight borough/airport Gaussian mixture."""
    return mixture_sorted(
        n, seed, _NYC_LAT_COMPONENTS, uniform_weight=0.02,
        uniform_range=(40.55, 40.95), clip=(40.50, 41.00),
    )


def taxi_drop_lon(n: int, seed: int = 0) -> np.ndarray:
    """Taxi drop-off longitudes: tight borough/airport Gaussian mixture."""
    return mixture_sorted(
        n, seed, _NYC_LON_COMPONENTS, uniform_weight=0.02,
        uniform_range=(-74.10, -73.70), clip=(-74.15, -73.65),
    )


register(
    "maps",
    maps_longitude,
    "map-feature longitudes, locally smooth continental mixture",
    "Maps/OSM [25]: longitudes of ~2B user-maintained features",
)
register(
    "osm_lon",
    lambda n, seed: maps_longitude(n, seed + 1),
    "OSM longitudes sample (different seed than 'maps')",
    "OpenStreetMap longitude sample used in Table 1",
)
register(
    "taxi_drop_lat",
    taxi_drop_lat,
    "taxi drop-off latitudes, tight NYC mixture",
    "NYC Taxi [24]: drop latitude attribute",
)
register(
    "taxi_drop_lon",
    taxi_drop_lon,
    "taxi drop-off longitudes, tight NYC mixture",
    "NYC Taxi [24]: drop longitude attribute",
)
