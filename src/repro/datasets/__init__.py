"""Dataset generators: seeded substitutes for the paper's evaluation data.

Importing this package registers every generator; use :func:`get` /
:func:`names` / :func:`spec` to access them. See each module's docstring
(and DESIGN.md's substitution table) for how the synthetic processes mirror
the real datasets' decisive property — the periodicity of the
key-to-position function.
"""

from repro.datasets import adversarial as _adversarial  # noqa: F401
from repro.datasets import spatial as _spatial  # noqa: F401
from repro.datasets import synthetic as _synthetic  # noqa: F401
from repro.datasets import temporal as _temporal  # noqa: F401
from repro.datasets.adversarial import (
    adversarial_keys,
    adversarial_n_for_elements,
)
from repro.datasets.base import DatasetSpec, get, names, register, spec
from repro.datasets.spatial import (
    maps_longitude,
    mixture_sorted,
    taxi_drop_lat,
    taxi_drop_lon,
)
from repro.datasets.synthetic import lognormal, step_data, uniform
from repro.datasets.temporal import (
    iot,
    poisson_from_hourly_profile,
    taxi_pickup_time,
    weblogs,
)

__all__ = [
    "DatasetSpec",
    "adversarial_keys",
    "adversarial_n_for_elements",
    "get",
    "iot",
    "lognormal",
    "maps_longitude",
    "mixture_sorted",
    "names",
    "poisson_from_hourly_profile",
    "register",
    "spec",
    "step_data",
    "taxi_drop_lat",
    "taxi_drop_lon",
    "taxi_pickup_time",
    "uniform",
    "weblogs",
]
