"""Live admin endpoint: ``/metrics``, ``/stats``, ``/slow``, ``/workload``.

A deliberately tiny HTTP/1.1 server on stdlib ``asyncio`` alone — no web
framework ships in this repo's toolchain, and an admin surface needs
four read-only GET routes, not middleware. Each connection serves one
request and closes (``Connection: close``), which keeps the parser to a
request line plus discarded headers.

Two entry points:

* ``Server(..., admin_port=...)`` / ``open_server(admin_port=...)`` —
  the serve layer starts an :class:`AdminServer` next to the request
  loop, so ``/stats`` includes batcher/engine stats.
* :func:`serve` — standalone: wrap a bare ``MetricsRegistry`` or a
  ``Telemetry`` bundle and expose it, for processes that are not serving
  requests (bench boxes, offline replayers).

Routes: ``/metrics`` (Prometheus text), ``/stats`` (JSON snapshot),
``/slow`` (slow-op records from the taillog), ``/workload`` (heatmap +
hot keys + skew report). Unknown paths 404; non-GET methods 405.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Dict, Optional, Tuple

__all__ = ["AdminServer", "serve"]

_MAX_REQUEST_BYTES = 16384


def _clean(obj: Any) -> Any:
    """Make a payload strictly JSON-safe, recursively.

    Numpy scalars subclass Python ``float``/``int``, so ``json.dumps``
    would serialize them natively — including non-finite values as the
    non-strict ``Infinity``/``NaN`` tokens that break downstream
    parsers. Admin payloads are small, so a recursive walk that maps
    non-finite floats to ``None`` and numpy containers to lists is
    cheaper than fighting the encoder's hooks.
    """
    if isinstance(obj, float):
        return float(obj) if math.isfinite(obj) else None
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, dict):
        return {str(k): _clean(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_clean(v) for v in obj]
    # Numpy leftovers: arrays expose ``tolist``, scalars ``item``.
    tolist = getattr(obj, "tolist", None)
    if callable(tolist):
        return _clean(tolist())
    item = getattr(obj, "item", None)
    if callable(item):
        return _clean(item())
    raise TypeError(f"not JSON serializable: {type(obj)!r}")


def _dumps(payload: Any) -> bytes:
    return json.dumps(_clean(payload)).encode()


class AdminServer:
    """Asyncio HTTP admin endpoint over a telemetry bundle.

    Bound to ``host:port`` (``port=0`` picks a free port, readable from
    :attr:`port` after :meth:`start`). When a serve-layer ``server`` is
    attached, ``/stats`` returns its full ``stats()``; otherwise the
    telemetry snapshot alone.
    """

    def __init__(
        self,
        telemetry: Any,
        *,
        server: Any = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.telemetry = telemetry
        self.server = server
        self.host = host
        self._requested_port = int(port)
        self._srv: Optional[asyncio.AbstractServer] = None
        self.requests = 0

    async def start(self) -> "AdminServer":
        """Bind and start accepting connections; returns ``self``."""
        self._srv = await asyncio.start_server(
            self._handle, self.host, self._requested_port
        )
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (resolves ``port=0`` after ``start()``)."""
        if self._srv is None:
            return self._requested_port
        return self._srv.sockets[0].getsockname()[1]

    async def close(self) -> None:
        """Stop accepting connections and wait for the socket to close."""
        if self._srv is not None:
            self._srv.close()
            await self._srv.wait_closed()
            self._srv = None

    # -- request handling ----------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            raw = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        if len(raw) > _MAX_REQUEST_BYTES:
            await self._respond(writer, 431, b"text/plain",
                                b"request too large\n")
            return
        try:
            method, path = raw.split(b"\r\n", 1)[0].decode().split(" ")[:2]
        except ValueError:
            await self._respond(writer, 400, b"text/plain", b"bad request\n")
            return
        self.requests += 1
        if method != "GET":
            await self._respond(writer, 405, b"text/plain",
                                b"method not allowed\n")
            return
        status, ctype, body = self._route(path.split("?", 1)[0])
        await self._respond(writer, status, ctype, body)

    def _route(self, path: str) -> Tuple[int, bytes, bytes]:
        tel = self.telemetry
        if path == "/metrics":
            return 200, b"text/plain; version=0.0.4", (
                tel.prometheus().encode()
            )
        if path == "/stats":
            if self.server is not None:
                return 200, b"application/json", _dumps(self.server.stats())
            return 200, b"application/json", _dumps(tel.snapshot())
        if path == "/slow":
            taillog = getattr(tel, "taillog", None)
            payload: Dict[str, Any] = {
                "summary": None if taillog is None else taillog.summary(),
                "records": [] if taillog is None else taillog.records(),
            }
            return 200, b"application/json", _dumps(payload)
        if path == "/workload":
            profiler = getattr(tel, "workload", None)
            if profiler is None:
                payload = {"workload": None, "skew": None}
            else:
                payload = {
                    "workload": profiler.snapshot(),
                    "skew": profiler.skew_report(),
                }
            return 200, b"application/json", _dumps(payload)
        return 404, b"text/plain", b"not found\n"

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter, status: int, ctype: bytes, body: bytes
    ) -> None:
        reason = {200: b"OK", 400: b"Bad Request", 404: b"Not Found",
                  405: b"Method Not Allowed",
                  431: b"Request Header Fields Too Large"}[status]
        writer.write(
            b"HTTP/1.1 %d %s\r\n"
            b"Content-Type: %s\r\n"
            b"Content-Length: %d\r\n"
            b"Connection: close\r\n\r\n"
            % (status, reason, ctype, len(body))
        )
        writer.write(body)
        try:
            await writer.drain()
        except ConnectionError:
            pass
        writer.close()


class _RegistryShim:
    """Duck-typed telemetry facade over a bare ``MetricsRegistry``."""

    def __init__(self, registry: Any) -> None:
        from repro.obs.export import snapshot, to_prometheus

        self.registry = registry
        self._snapshot = snapshot
        self._to_prometheus = to_prometheus
        self.workload = None
        self.taillog = None

    def prometheus(self) -> str:
        """The registry in Prometheus text format."""
        return self._to_prometheus(self.registry)

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able registry snapshot."""
        return self._snapshot(self.registry)


async def serve(
    target: Any, *, host: str = "127.0.0.1", port: int = 0
) -> AdminServer:
    """Start a standalone admin endpoint over a registry or telemetry.

    ``target`` may be a ``Telemetry`` bundle (full routes) or a bare
    ``MetricsRegistry`` (``/metrics`` and ``/stats`` only; ``/slow`` and
    ``/workload`` answer empty payloads). Returns the started
    :class:`AdminServer`; the caller owns its :meth:`AdminServer.close`.
    """
    if not hasattr(target, "prometheus"):
        target = _RegistryShim(target)
    return await AdminServer(target, host=host, port=port).start()
