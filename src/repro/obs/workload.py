"""Workload analytics: key-range heatmaps, hot-key sketches, access mix.

FITing-Tree is data-aware only at build time; this module makes the
*running* system workload-aware. It answers three questions the metrics
layer cannot: which key ranges are hot (per-shard fixed-width access
histograms), which individual keys are hot (a space-saving heavy-hitter
sketch), and how skewed the shard load is (:meth:`WorkloadProfiler.
skew_report` — Gini coefficients and top-bin shares). The re-balancer
milestone reads this as its input distribution.

Cost model — the whole point of the design, budgeted at ≤5% ``get_batch``
overhead by ``python -m repro.bench obs``:

* One sketch update per *verb call*, never per key, over a strided
  subsample of the batch (``sample`` knob; counts are scaled back up).
  The histogram update is a single vectorized pass: route ids via
  ``np.searchsorted`` (or reuse the engine's already-computed route),
  one multiply/clip to local bin ids, one ``np.bincount`` over
  ``shard_id * n_bins + bin`` into the flat count grid.
* The hot-key sketch amortizes its ``np.unique`` over many batches: the
  hot path only appends the strided sample to an accumulator; every
  ``flush_keys`` sampled keys, one unique + ``np.argpartition`` pass
  reduces the window to a bounded candidate list for the space-saving
  table. Readers flush before reporting, so the sketch is never stale.

Cluster workers run a :class:`ShardWorkloadProfiler` (no parent state)
and ship a compact per-batch *delta* dict back inside the existing reply
frames — exactly like span dicts — which the parent merges with
:meth:`WorkloadProfiler.merge_delta`, so ``ClusterEngine`` reports the
same ``stats()["workload"]`` schema as its in-process twin.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SpaceSaving", "WorkloadProfiler", "ShardWorkloadProfiler", "VERBS"]

#: Access verbs tracked by the read/write mix counters.
VERBS = ("get", "range", "insert", "delete")

_VERB_IDX = {v: i for i, v in enumerate(VERBS)}

#: Verbs counted as reads in the mix summary.
_READ_VERBS = ("get", "range")


def _gini(x: np.ndarray) -> float:
    """Gini coefficient of a non-negative count vector (0 = uniform)."""
    total = float(x.sum())
    n = x.size
    if total <= 0.0 or n <= 1:
        return 0.0
    xs = np.sort(np.asarray(x, dtype=np.float64))
    ranks = np.arange(1, n + 1, dtype=np.float64)
    return float(2.0 * np.dot(ranks, xs) / (n * total) - (n + 1) / n)


class SpaceSaving:
    """Space-saving heavy-hitter sketch (Metwally et al.) over float keys.

    Tracks at most ``capacity`` counters. A new key evicts the current
    minimum counter and inherits its count as over-estimation error, so
    any key whose true frequency exceeds ``total / capacity`` is
    guaranteed to be present. Counts are upper bounds; ``err`` bounds the
    over-estimate per key.
    """

    __slots__ = ("capacity", "_counts", "_errs", "total")

    def __init__(self, capacity: int = 64) -> None:
        self.capacity = int(capacity)
        self._counts: Dict[float, int] = {}
        self._errs: Dict[float, int] = {}
        self.total = 0

    def offer(self, key: float, count: int = 1) -> None:
        """Add ``count`` observations of ``key`` (evicting the min if full).

        ``count`` batches many observations of the same key into one
        table operation — the vectorized callers pre-aggregate with
        ``np.unique`` so this runs a bounded number of times per flush.
        """
        self.total += count
        counts = self._counts
        if key in counts:
            counts[key] += count
            return
        if len(counts) < self.capacity:
            counts[key] = count
            self._errs[key] = 0
            return
        victim = min(counts, key=counts.__getitem__)
        floor = counts.pop(victim)
        self._errs.pop(victim, None)
        counts[key] = floor + count
        self._errs[key] = floor

    def update(self, keys: Sequence[float], counts: Sequence[int]) -> None:
        """Offer a pre-aggregated ``(key, count)`` candidate list."""
        for key, count in zip(keys, counts):
            self.offer(float(key), int(count))

    def top(self, k: int = 10) -> List[Tuple[float, int, int]]:
        """The ``k`` largest counters as ``(key, count, err)``, descending."""
        items = sorted(
            self._counts.items(), key=lambda kv: kv[1], reverse=True
        )[:k]
        return [(key, count, self._errs.get(key, 0)) for key, count in items]

    def __len__(self) -> int:
        return len(self._counts)


class _HotAccumulator:
    """Deferred hot-key candidate extraction, amortized across batches.

    The hot path only copies the (already strided) sample into a chunk
    list; once ``flush_keys`` keys have accumulated, one ``np.unique``
    over the window plus an ``np.argpartition`` top-``limit`` cut yields
    the candidate ``(keys, counts)`` pair for the space-saving table.
    """

    __slots__ = ("limit", "flush_keys", "_chunks", "_n")

    def __init__(self, limit: int, flush_keys: int) -> None:
        self.limit = max(1, int(limit))
        self.flush_keys = max(1, int(flush_keys))
        self._chunks: List[np.ndarray] = []
        self._n = 0

    def add(self, sampled: np.ndarray) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Buffer one sampled batch; returns candidates when flushing."""
        if sampled.size == 0:
            return None
        self._chunks.append(sampled.copy())
        self._n += sampled.size
        if self._n >= self.flush_keys:
            return self.flush()
        return None

    def flush(self) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """Reduce the buffered window to top-``limit`` candidates."""
        if not self._chunks:
            return None
        window = np.concatenate(self._chunks)
        self._chunks = []
        self._n = 0
        uniq, cnt = np.unique(window, return_counts=True)
        if uniq.size > self.limit:
            idx = np.argpartition(cnt, -self.limit)[-self.limit:]
            uniq, cnt = uniq[idx], cnt[idx]
        return uniq, cnt


class WorkloadProfiler:
    """Engine-level workload profiler: heatmap + hot keys + verb mix.

    One instance lives on the engine (hung off the ``Telemetry`` bundle).
    Shard key spans are fixed-width binned: inner boundaries come from
    the engine's routing ``cuts``; the open edges (below the first cut,
    above the last) adopt and widen from observed batch extrema, so the
    first batches define them and later out-of-span keys clip into the
    edge bins — a deliberate sketch approximation. All counts are
    estimates scaled up from a 1-in-``sample`` strided subsample.

    The default strides are sized to the perf guard, not to accuracy per
    batch, and they stride at two levels. ``sample`` is the in-batch key
    stride; ``batch_sample`` fully profiles only every k-th batch *per
    verb* (the first call of each verb always bins, so single-burst
    traffic is never invisible) — skipped batches cost one lock and two
    integer adds, and their key counts fold into the next binned call's
    scale factor, so per-verb totals track the real traffic. Batch
    striding is what makes the profiler cheap *in situ*: interleaved
    with real engine scans its arrays are cache-cold, which costs ~2-3x
    the warm-loop microbenchmark figure per binned batch.
    ``total_keys`` stays exact — every call adds the true batch size.

    Thread-safe: the serve layer dispatches per-shard sub-batches from
    executor threads, so the mutating entry points take a lock (one
    uncontended acquire per *batch*, noise next to the bincount).
    """

    def __init__(
        self,
        cuts: Sequence[float],
        *,
        n_bins: int = 32,
        hot_capacity: int = 64,
        hot_candidates: int = 48,
        sample: int = 8,
        batch_sample: int = 8,
        hot_sample: int = 4,
        flush_keys: int = 4096,
    ) -> None:
        self._cuts = np.asarray(cuts, dtype=np.float64).ravel()
        self.n_shards = self._cuts.size + 1
        self.n_bins = int(n_bins)
        self.sample = max(1, int(sample))
        self.hot_sample = max(1, int(hot_sample))
        total = self.n_shards * self.n_bins
        self._counts = np.zeros(total, dtype=np.int64)
        # Per-verb counts kept at bin granularity so the hot path adds
        # the one bincount it already has; per-shard sums happen at
        # snapshot time (merge_delta folds a worker's per-shard count
        # into the shard's first bin — only the per-shard sum is public).
        self._verb_bins = np.zeros((len(VERBS), total), dtype=np.int64)
        self._lo = np.full(self.n_shards, np.nan)
        self._hi = np.full(self.n_shards, np.nan)
        if self.n_shards > 1:
            self._lo[1:] = self._cuts
            self._hi[:-1] = self._cuts
        self._scale = np.zeros(self.n_shards)
        for sid in range(self.n_shards):
            self._rescale(sid)  # inner shards have both edges already
        self._edges = np.zeros(total + 1)
        # Dropping the outermost edges makes searchsorted(side="right")
        # land directly in [0, total-1] — below-span keys hit bin 0,
        # above-span keys the last bin — with no -1 and no clip.
        self._search_edges = self._edges[1:-1]
        self._edges_stale = True
        self._calls = 0
        self.batch_sample = max(1, int(batch_sample))
        self._verb_calls = [0] * len(VERBS)
        self._pending = [0] * len(VERBS)
        self.hot = SpaceSaving(hot_capacity)
        self._acc = _HotAccumulator(hot_candidates, flush_keys)
        self.total_keys = 0
        self.merged_deltas = 0
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------

    def _rescale(self, sid: int) -> None:
        span = self._hi[sid] - self._lo[sid]
        self._scale[sid] = self.n_bins / span if span > 0.0 else 0.0
        self._edges_stale = True

    def _rebuild_edges(self) -> None:
        # Shard spans are contiguous (they meet at the cuts), so all the
        # per-shard fixed-width bins flatten into ONE sorted edge array:
        # binning the whole batch is then a single np.searchsorted, which
        # routes and bins at once. Unknown edge spans collapse to
        # zero-width (their bins activate once the span is adopted).
        lo = np.where(np.isnan(self._lo), 0.0, self._lo)
        hi = np.where(np.isnan(self._hi), lo, self._hi)
        nb = self.n_bins
        for s in range(self.n_shards):
            self._edges[s * nb:(s + 1) * nb + 1] = np.linspace(
                lo[s], hi[s], nb + 1
            )
        self._edges_stale = False

    def _widen_edges(self, lo: float, hi: float) -> None:
        if not self._lo[0] <= lo:  # NaN-aware: also true on first batch
            self._lo[0] = lo
            self._rescale(0)
        if not self._hi[-1] >= hi:
            self._hi[-1] = hi
            self._rescale(self.n_shards - 1)

    def record(
        self,
        verb: str,
        keys: np.ndarray,
        sid: Optional[np.ndarray] = None,
        *,
        hot: bool = True,
    ) -> None:
        """Fold one batch into the sketch — a single vectorized update.

        ``keys`` is the batch's key array (for ``"range"``, the lower
        bounds). Only every ``batch_sample``-th call per verb is binned
        (the first always is); a skipped call just adds to ``total_keys``
        and the verb's pending count. A binned call strides the batch by
        ``sample``, routes *and* bins the sample with one
        ``np.searchsorted`` over the flattened global bin edges, and
        scales the bincount by ``pending // sampled`` so the skipped
        batches' keys are represented too. ``sid`` (an engine's
        precomputed route) is accepted for API symmetry but unused — the
        fused path is cheaper than consuming it. ``hot=False`` skips the
        hot-key candidate pass (used for replay/rebuild traffic that
        should not pollute the sketch).
        """
        q = np.asarray(keys, dtype=np.float64).ravel()
        n = q.size
        if n == 0:
            return
        vi = _VERB_IDX[verb]
        with self._lock:
            self.total_keys += n
            turn = self._verb_calls[vi]
            self._verb_calls[vi] = turn + 1
            self._pending[vi] += n
            if turn % self.batch_sample:
                return
            pending = self._pending[vi]
            self._pending[vi] = 0
            step = self.sample
            qs = np.ascontiguousarray(q[::step]) if step > 1 else q
            self._calls += 1
            # Edge spans stabilize after the first batches; afterwards
            # check extrema only periodically (out-of-span keys clip
            # into the edge bins in between — sketch-grade accuracy).
            if self._calls <= 16 or not self._calls % 16:
                self._widen_edges(float(qs.min()), float(qs.max()))
            if self._edges_stale:
                self._rebuild_edges()
            b = self._search_edges.searchsorted(qs, "right")
            factor = pending // qs.size
            delta = np.bincount(b, minlength=self._counts.size) * factor
            self._counts += delta
            self._verb_bins[vi] += delta
            if hot and verb != "range":
                hs = self.hot_sample
                pairs = self._acc.add(qs[::hs] if hs > 1 else qs)
                if pairs is not None:
                    self.hot.update(pairs[0], pairs[1] * (factor * hs))

    def merge_delta(self, sid: int, delta: Dict[str, Any]) -> None:
        """Fold a worker's per-batch delta into the parent sketch.

        The delta's bin counts were taken over the worker's own span,
        which may differ from the parent's span for that shard (workers
        adopt spans from observed keys, the parent from the cuts). The
        counts are re-binned by bin center rather than assumed aligned.
        """
        n = int(delta["n"])
        if n == 0:
            return
        sid = int(sid)
        dlo, dhi = float(delta["lo"]), float(delta["hi"])
        c = np.asarray(delta["c"], dtype=np.int64)
        with self._lock:
            self.merged_deltas += 1
            self.total_keys += n
            self._verb_bins[_VERB_IDX[delta["v"]], sid * self.n_bins] += n
            if not self._lo[sid] <= dlo:
                self._lo[sid] = dlo
                self._rescale(sid)
            if not self._hi[sid] >= dhi:
                self._hi[sid] = dhi
                self._rescale(sid)
            width = (dhi - dlo) / c.size if dhi > dlo else 0.0
            centers = dlo + (np.arange(c.size) + 0.5) * width
            b = ((centers - self._lo[sid]) * self._scale[sid]).astype(np.int64)
            np.clip(b, 0, self.n_bins - 1, out=b)
            row = self._counts[sid * self.n_bins:(sid + 1) * self.n_bins]
            np.add.at(row, b, c)
            for key, count in delta.get("hot", ()):
                self.hot.offer(float(key), int(count))

    def _flush_hot(self) -> None:
        pairs = self._acc.flush()
        if pairs is not None:
            scale = self.sample * self.batch_sample * self.hot_sample
            self.hot.update(pairs[0], pairs[1] * scale)

    # -- reporting -----------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able state: heatmap rows, verb mix, hot keys, totals."""
        with self._lock:
            self._flush_hot()
            grid = self._counts.reshape(self.n_shards, self.n_bins).copy()
            lo, hi = self._lo.copy(), self._hi.copy()
            verbs = self._verb_bins.reshape(
                len(VERBS), self.n_shards, self.n_bins
            ).sum(axis=2)
            hot = self.hot.top(16)
            total = self.total_keys
            merged = self.merged_deltas
        heatmap = [
            {
                "shard": s,
                "lo": None if np.isnan(lo[s]) else float(lo[s]),
                "hi": None if np.isnan(hi[s]) else float(hi[s]),
                "counts": grid[s].tolist(),
            }
            for s in range(self.n_shards)
        ]
        reads = sum(int(verbs[_VERB_IDX[v]].sum()) for v in _READ_VERBS)
        sampled = int(verbs.sum())
        return {
            "n_bins": self.n_bins,
            "n_shards": self.n_shards,
            "sample": self.sample,
            "batch_sample": self.batch_sample,
            "total_keys": int(total),
            "merged_deltas": int(merged),
            "read_fraction": reads / sampled if sampled else 0.0,
            "verbs": {
                verb: verbs[_VERB_IDX[verb]].tolist() for verb in VERBS
            },
            "heatmap": heatmap,
            "hot_keys": [
                {"key": float(k), "count": int(c), "err": int(e)}
                for k, c, e in hot
            ],
        }

    def skew_report(self, top_bins: int = 4) -> Dict[str, Any]:
        """Skew summary: per-shard Gini/top-bin shares plus shard-level Gini.

        Parameters
        ----------
        top_bins:
            How many of a shard's hottest bins the ``top_share`` field
            aggregates.

        Returns
        -------
        dict
            ``per_shard`` rows (``ops``, ``share`` of all traffic,
            ``gini`` over that shard's bins, ``top_share``), the Gini of
            shard totals (``shard_gini``) and the ``hottest_shard`` id.
        """
        with self._lock:
            grid = self._counts.reshape(self.n_shards, self.n_bins).copy()
        totals = grid.sum(axis=1)
        grand = float(totals.sum())
        per_shard = []
        for s in range(self.n_shards):
            row = grid[s]
            t = float(totals[s])
            srt = np.sort(row)[::-1]
            top = float(srt[:top_bins].sum())
            per_shard.append(
                {
                    "shard": s,
                    "ops": int(t),
                    "share": t / grand if grand else 0.0,
                    "gini": _gini(row),
                    "top_share": top / t if t else 0.0,
                }
            )
        return {
            "per_shard": per_shard,
            "shard_gini": _gini(totals),
            "hottest_shard": int(np.argmax(totals)) if grand else None,
            "top_bins": int(top_bins),
        }


class ShardWorkloadProfiler:
    """Worker-side profiler: stateless deltas, no parent-visible state.

    A cluster worker cannot share numpy arrays with the parent, so it
    keeps only its own shard's span (adopted from the first observed
    batch, widened as extremes appear) and emits one compact delta dict
    per batch — strided bin counts (scaled back up), verb, span and
    hot-key candidates — which rides back in the existing reply frame
    for the parent to :meth:`WorkloadProfiler.merge_delta`. Hot-key
    candidates amortize like the parent's: most deltas carry an empty
    ``hot`` list, and every ``flush_keys`` sampled keys one delta ships
    the window's top candidates.
    """

    def __init__(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        *,
        n_bins: int = 32,
        hot_candidates: int = 48,
        sample: int = 4,
        flush_keys: int = 1024,
    ) -> None:
        self.n_bins = int(n_bins)
        self.sample = max(1, int(sample))
        self._lo = float("nan") if lo is None else float(lo)
        self._hi = float("nan") if hi is None else float(hi)
        self._scale = 0.0
        self._acc = _HotAccumulator(hot_candidates, flush_keys)
        self._rescale()

    def _rescale(self) -> None:
        span = self._hi - self._lo
        self._scale = self.n_bins / span if span > 0.0 else 0.0

    def record(
        self, verb: str, keys: np.ndarray, *, hot: bool = True
    ) -> Dict[str, Any]:
        """Bin one batch and return the delta dict for the reply frame.

        Same single-pass cost model as :meth:`WorkloadProfiler.record`,
        minus routing (a worker owns exactly one shard).
        """
        q = np.asarray(keys, dtype=np.float64).ravel()
        n = q.size
        if n == 0:
            return {"v": verb, "n": 0, "lo": self._lo, "hi": self._hi,
                    "c": (), "hot": ()}
        step = self.sample
        qs = q[::step] if step > 1 else q
        lo, hi = float(qs.min()), float(qs.max())
        if not self._lo <= lo:
            self._lo = lo
            self._rescale()
        if not self._hi >= hi:
            self._hi = hi
            self._rescale()
        b = ((qs - self._lo) * self._scale).astype(np.int64)
        np.clip(b, 0, self.n_bins - 1, out=b)
        counts = np.bincount(b, minlength=self.n_bins) * step
        pairs: List[Tuple[float, int]] = []
        if hot and verb != "range":
            flushed = self._acc.add(qs)
            if flushed is not None:
                scaled = flushed[1] * step
                pairs = list(zip(flushed[0].tolist(), scaled.tolist()))
        return {
            "v": verb,
            "n": n,
            "lo": self._lo,
            "hi": self._hi,
            "c": counts,
            "hot": pairs,
        }
