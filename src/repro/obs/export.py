"""Render a metrics registry (and optionally a tracer) for the outside world.

Two consumers, two formats:

* :func:`snapshot` — a JSON-able dict for ``Server.stats()``, the bench
  harness and tests: every family with its kind, labels and current
  values, plus (when a tracer is supplied) the buffered span records.
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``name{label="v"} value`` samples,
  histograms expanded to cumulative ``_bucket{le=...}`` series with
  ``_sum`` and ``_count``), so a scrape endpoint is one ``web.Response``
  away.

Both walk :meth:`MetricsRegistry.collect` — callbacks resolve here, on
the cold path, never on the request path.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import Histogram, MetricFamily, MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["snapshot", "to_prometheus"]

#: Callback families export as gauges (they are point-in-time reads).
_PROM_TYPE = {"counter": "counter", "gauge": "gauge",
              "histogram": "histogram", "callback": "gauge"}


def _labels_dict(family: MetricFamily, values: tuple) -> Dict[str, str]:
    names = family.labelnames
    if len(names) != len(values):
        # Callback families may emit label tuples without declared names.
        names = tuple(f"label{i}" for i in range(len(values)))
    return dict(zip(names, values))


def snapshot(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> Dict[str, Any]:
    """Registry (and optional tracer) as one JSON-able dict.

    Returns
    -------
    dict
        ``{"metrics": {name: {"type", "help", "samples": [...]}, ...},
        "trace": {"capacity", "dropped", "dropped_spans",
        "dropped_malformed", "spans": [...]}}`` — the
        ``trace`` key only present when a tracer is given. ``dropped``
        is the aggregate; ``dropped_spans`` counts silent ring evictions
        and ``dropped_malformed`` bad cross-process records. Histogram
        samples carry their bucket bounds, cumulative counts, sum and
        count; scalar samples carry a single ``value``.
    """
    metrics: Dict[str, Any] = {}
    for family in registry.collect():
        samples: List[Dict[str, Any]] = []
        for values, child in family.samples():
            entry: Dict[str, Any] = {"labels": _labels_dict(family, values)}
            if isinstance(child, Histogram):
                entry["buckets"] = list(child.buckets)
                entry["counts"] = child.cumulative()
                entry["sum"] = child.sum
                entry["count"] = child.count
            else:
                entry["value"] = child.value
            samples.append(entry)
        metrics[family.name] = {
            "type": _PROM_TYPE[family.kind],
            "help": family.help,
            "samples": samples,
        }
    out: Dict[str, Any] = {"metrics": metrics}
    if tracer is not None:
        out["trace"] = {
            "capacity": tracer.capacity,
            "dropped": tracer.dropped,
            "dropped_spans": tracer.dropped_spans,
            "dropped_malformed": tracer.dropped_malformed,
            "spans": [sp.to_dict() for sp in tracer.spans()],
        }
    return out


def _fmt_value(v: float) -> str:
    if v == int(v):
        return str(int(v))
    return repr(v)


def _fmt_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{str(v).replace(chr(92), chr(92) * 2).replace(chr(34), chr(92) + chr(34))}"'
        for k, v in labels.items()
    )
    return "{" + body + "}"


def to_prometheus(registry: MetricsRegistry) -> str:
    """Registry in Prometheus text exposition format (version 0.0.4).

    Counter families get a ``_total``-suffix-free passthrough of their
    registered name (name hygiene is the registrant's job); histograms
    expand into cumulative ``_bucket{le=...}`` series plus ``_sum`` and
    ``_count``; callback families are exposed as gauges.
    """
    lines: List[str] = []
    for family in registry.collect():
        prom_type = _PROM_TYPE[family.kind]
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {prom_type}")
        for values, child in family.samples():
            labels = _labels_dict(family, values)
            if isinstance(child, Histogram):
                cumulative = child.cumulative()
                for bound, count in zip(child.buckets, cumulative):
                    bl = dict(labels)
                    bl["le"] = _fmt_value(bound)
                    lines.append(
                        f"{family.name}_bucket{_fmt_labels(bl)} {count}"
                    )
                bl = dict(labels)
                bl["le"] = "+Inf"
                lines.append(
                    f"{family.name}_bucket{_fmt_labels(bl)} {child.count}"
                )
                lines.append(
                    f"{family.name}_sum{_fmt_labels(labels)} "
                    f"{_fmt_value(child.sum)}"
                )
                lines.append(
                    f"{family.name}_count{_fmt_labels(labels)} {child.count}"
                )
            else:
                lines.append(
                    f"{family.name}{_fmt_labels(labels)} "
                    f"{_fmt_value(child.value)}"
                )
    return "\n".join(lines) + "\n"
