"""Stack-wide telemetry: metrics registry, batch tracing, and exporters.

``repro.obs`` is the substrate every other layer reports into — it
imports nothing above :mod:`repro.core`, and the engine/serve/cluster
layers hold at most an optional reference to it. The public surface is
the :class:`Telemetry` facade:

>>> from repro import open_engine
>>> from repro.obs import Telemetry
>>> tel = Telemetry(mode="full")                   # doctest: +SKIP
>>> eng = open_engine(keys, telemetry=tel)         # doctest: +SKIP
>>> eng.get_batch(queries)                         # doctest: +SKIP
>>> tel.snapshot()["metrics"]["repro_engine_ops_total"]  # doctest: +SKIP

Three modes, chosen for cost:

* ``"off"`` — no ``Telemetry`` object at all (``Telemetry.from_mode``
  returns ``None``); instrumented hot paths reduce to one
  ``is not None`` check per *batch*, benchmarked at ≤2% overhead by
  ``python -m repro.bench obs``.
* ``"metrics"`` — counters/gauges/histograms update; tracing stays off.
* ``"full"`` — metrics plus span recording into the bounded ring buffer.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from repro.core.errors import InvalidParameterError
from repro.obs.export import snapshot, to_prometheus
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.trace import Span, Tracer, span_record

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "span_record",
    "snapshot",
    "to_prometheus",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Accepted ``telemetry=`` mode strings (``"off"`` maps to ``None``).
MODES = ("off", "metrics", "full")


class Telemetry:
    """One deployment's telemetry bundle: a registry plus (optionally) a tracer.

    Instances are always *enabled* — the disabled state is represented by
    the absence of an instance (``Telemetry.from_mode("off") is None``),
    so instrumented code pays a single ``is not None`` test when
    telemetry is off rather than a method call.
    """

    def __init__(
        self,
        mode: str = "full",
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_capacity: int = 4096,
    ) -> None:
        if mode not in ("metrics", "full"):
            raise InvalidParameterError(
                f"Telemetry mode must be 'metrics' or 'full', got {mode!r} "
                "(use Telemetry.from_mode() to map 'off' to None)"
            )
        self.mode = mode
        self.registry = registry if registry is not None else MetricsRegistry()
        if mode == "full":
            self.tracer = tracer if tracer is not None else Tracer(trace_capacity)
        else:
            self.tracer = None

    @staticmethod
    def from_mode(
        mode: Union[str, "Telemetry", None],
    ) -> Optional["Telemetry"]:
        """Resolve a config knob value to a ``Telemetry`` or ``None``.

        ``None``/``"off"`` → ``None``; an existing instance passes
        through (so a server and its engine can share one registry);
        ``"metrics"``/``"full"`` construct a fresh bundle.
        """
        if mode is None or mode == "off":
            return None
        if isinstance(mode, Telemetry):
            return mode
        if mode in ("metrics", "full"):
            return Telemetry(mode=mode)
        raise InvalidParameterError(
            f"telemetry must be one of {MODES} or a Telemetry instance, "
            f"got {mode!r}"
        )

    # -- tracing -------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """Whether span recording is active (mode ``"full"``)."""
        return self.tracer is not None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a span if tracing, else a no-op block yielding ``None``."""
        if self.tracer is None:
            yield None
        else:
            with self.tracer.span(name, **attrs) as sp:
                yield sp

    def ctx(self) -> Optional[tuple]:
        """Ambient ``(trace_id, span_id)`` when tracing, else ``None``."""
        return self.tracer.ctx() if self.tracer is not None else None

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of the registry (and tracer when tracing).

        Returns
        -------
        dict
            See :func:`repro.obs.export.snapshot`; ``"mode"`` is added so
            consumers can tell what was being recorded.
        """
        out = snapshot(self.registry, self.tracer)
        out["mode"] = self.mode
        return out

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return to_prometheus(self.registry)
