"""Stack-wide telemetry: metrics registry, batch tracing, and exporters.

``repro.obs`` is the substrate every other layer reports into — it
imports nothing above :mod:`repro.core`, and the engine/serve/cluster
layers hold at most an optional reference to it. The public surface is
the :class:`Telemetry` facade:

>>> from repro import open_engine
>>> from repro.obs import Telemetry
>>> tel = Telemetry(mode="full")                   # doctest: +SKIP
>>> eng = open_engine(keys, telemetry=tel)         # doctest: +SKIP
>>> eng.get_batch(queries)                         # doctest: +SKIP
>>> tel.snapshot()["metrics"]["repro_engine_ops_total"]  # doctest: +SKIP

Three modes, chosen for cost:

* ``"off"`` — no ``Telemetry`` object at all (``Telemetry.from_mode``
  returns ``None``); instrumented hot paths reduce to one
  ``is not None`` check per *batch*, benchmarked at ≤2% overhead by
  ``python -m repro.bench obs``.
* ``"metrics"`` — counters/gauges/histograms update; tracing stays off.
* ``"full"`` — metrics plus span recording into the bounded ring buffer,
  plus workload profiling and the slow-op log (see below).

Two orthogonal add-ons compose with the base modes:

* **Workload profiling** (:mod:`repro.obs.workload`) — key-range access
  heatmaps, hot-key sketch, read/write mix. On by default in ``"full"``;
  the string modes ``"workload"`` (= metrics + profiling, no tracing)
  and ``"full+workload"`` (explicit alias of ``"full"``) select it from
  config knobs. Budgeted at ≤5% ``get_batch`` overhead by
  ``python -m repro.bench obs``.
* **Slow-op log** (:mod:`repro.obs.taillog`) — requires spans, so it
  exists exactly when tracing does (mode ``"full"``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Union

from repro.core.errors import InvalidParameterError
from repro.obs.export import snapshot, to_prometheus
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.obs.taillog import SlowOpLog
from repro.obs.trace import Span, Tracer, span_record
from repro.obs.workload import (
    ShardWorkloadProfiler,
    SpaceSaving,
    WorkloadProfiler,
)

__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "Tracer",
    "Span",
    "span_record",
    "snapshot",
    "to_prometheus",
    "DEFAULT_LATENCY_BUCKETS_US",
    "WorkloadProfiler",
    "ShardWorkloadProfiler",
    "SpaceSaving",
    "SlowOpLog",
    "stats_sections",
]

#: Accepted ``telemetry=`` mode strings (``"off"`` maps to ``None``).
MODES = ("off", "metrics", "workload", "full", "full+workload")


def stats_sections(
    telemetry: Optional["Telemetry"],
) -> tuple:
    """The ``(workload, slow_ops)`` blocks an engine's ``stats()`` reports.

    Shared by :class:`~repro.engine.ShardedEngine` and
    :class:`~repro.cluster.ClusterEngine` so both backends emit the
    identical schema: ``workload`` is the profiler snapshot with an
    embedded ``skew`` report (or ``None`` when profiling is off) and
    ``slow_ops`` is the taillog summary (or ``None`` outside mode
    ``"full"``).
    """
    if telemetry is None:
        return None, None
    workload = getattr(telemetry, "workload", None)
    wl_block = None
    if workload is not None:
        wl_block = workload.snapshot()
        wl_block["skew"] = workload.skew_report()
    taillog = getattr(telemetry, "taillog", None)
    return wl_block, None if taillog is None else taillog.summary()


class Telemetry:
    """One deployment's telemetry bundle: a registry plus (optionally) a tracer.

    Instances are always *enabled* — the disabled state is represented by
    the absence of an instance (``Telemetry.from_mode("off") is None``),
    so instrumented code pays a single ``is not None`` test when
    telemetry is off rather than a method call.
    """

    def __init__(
        self,
        mode: str = "full",
        *,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_capacity: int = 4096,
        workload: Optional[bool] = None,
        slow_capacity: int = 256,
    ) -> None:
        if mode not in ("metrics", "full"):
            raise InvalidParameterError(
                f"Telemetry mode must be 'metrics' or 'full', got {mode!r} "
                "(use Telemetry.from_mode() to map 'off' to None)"
            )
        self.mode = mode
        self.registry = registry if registry is not None else MetricsRegistry()
        if mode == "full":
            self.tracer = tracer if tracer is not None else Tracer(trace_capacity)
            self.taillog: Optional[SlowOpLog] = SlowOpLog(slow_capacity)
        else:
            self.tracer = None
            self.taillog = None
        # Workload profiling defaults on in "full"; the profiler itself
        # needs the engine's routing cuts, so it is instantiated lazily
        # by the first engine that adopts this bundle (ensure_workload).
        self.workload_enabled = (
            (mode == "full") if workload is None else bool(workload)
        )
        self.workload: Optional[WorkloadProfiler] = None

    @staticmethod
    def from_mode(
        mode: Union[str, "Telemetry", None],
    ) -> Optional["Telemetry"]:
        """Resolve a config knob value to a ``Telemetry`` or ``None``.

        ``None``/``"off"`` → ``None``; an existing instance passes
        through (so a server and its engine can share one registry);
        ``"metrics"``/``"full"`` construct a fresh bundle;
        ``"workload"`` is metrics plus workload profiling (no tracing)
        and ``"full+workload"`` is an explicit alias of ``"full"``
        (which profiles by default).
        """
        if mode is None or mode == "off":
            return None
        if isinstance(mode, Telemetry):
            return mode
        if mode in ("metrics", "full"):
            return Telemetry(mode=mode)
        if mode == "workload":
            return Telemetry(mode="metrics", workload=True)
        if mode == "full+workload":
            return Telemetry(mode="full", workload=True)
        raise InvalidParameterError(
            f"telemetry must be one of {MODES} or a Telemetry instance, "
            f"got {mode!r}"
        )

    # -- tracing -------------------------------------------------------

    @property
    def tracing(self) -> bool:
        """Whether span recording is active (mode ``"full"``)."""
        return self.tracer is not None

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Optional[Span]]:
        """Open a span if tracing, else a no-op block yielding ``None``."""
        if self.tracer is None:
            yield None
        else:
            with self.tracer.span(name, **attrs) as sp:
                yield sp

    def ctx(self) -> Optional[tuple]:
        """Ambient ``(trace_id, span_id)`` when tracing, else ``None``."""
        return self.tracer.ctx() if self.tracer is not None else None

    # -- workload profiling --------------------------------------------

    def ensure_workload(self, cuts: Any) -> Optional[WorkloadProfiler]:
        """Instantiate the workload profiler for an engine's cuts.

        Engines call this once at telemetry registration. Returns the
        (possibly pre-existing) profiler, or ``None`` when workload
        profiling is disabled for this bundle. A profiler created by an
        earlier engine is reused — a server and its engine share one
        bundle, and the cuts are the same.
        """
        if not self.workload_enabled:
            return None
        if self.workload is None:
            self.workload = WorkloadProfiler(cuts)
        return self.workload

    # -- export --------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able snapshot of the registry (and tracer when tracing).

        Returns
        -------
        dict
            See :func:`repro.obs.export.snapshot`; ``"mode"`` is added so
            consumers can tell what was being recorded, plus
            ``"workload"`` (profiler snapshot + skew report, or ``None``)
            and ``"slow_ops"`` (taillog summary, or ``None``).
        """
        out = snapshot(self.registry, self.tracer)
        out["mode"] = self.mode
        if self.workload is not None:
            out["workload"] = self.workload.snapshot()
            out["workload"]["skew"] = self.workload.skew_report()
        else:
            out["workload"] = None
        out["slow_ops"] = (
            self.taillog.summary() if self.taillog is not None else None
        )
        return out

    def prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        return to_prometheus(self.registry)
