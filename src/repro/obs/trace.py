"""Bounded ring-buffer span tracing for a batch's end-to-end lifecycle.

One serve-layer request spends its life in five places: the batcher's
pending queue (submit → fence wait), the flush cycle (with a reason:
size, timer, idle or drain), per-shard dispatch, worker compute — which
for :class:`~repro.cluster.engine.ClusterEngine` happens in a *different
process* on the far side of the shm lane protocol — and the gather that
scatters results back. :class:`Tracer` records each stage as a
:class:`Span` carrying a shared ``trace_id``, so one slow request can be
explained stage by stage across the process boundary.

Mechanics:

* **Ambient context.** The current ``(trace_id, span_id)`` rides a
  :class:`contextvars.ContextVar`, so nested ``with tracer.span(...)``
  blocks parent themselves without any plumbing — including across
  ``await`` points inside one asyncio task. It does *not* survive
  ``loop.run_in_executor`` (executor threads get an empty context), which
  is why the serve layer's threaded shard-dispatch path is traced at the
  dispatch span and not below it.
* **Crossing processes.** A worker has no :class:`Tracer`. The parent
  serializes ``(trace_id, parent_span_id)`` into the control frame, the
  worker times its compute and returns plain span *dicts*
  (:func:`span_record`) in the reply, and the parent stitches them into
  its ring with :meth:`Tracer.ingest`. Span ids are prefixed with the
  originating pid so two processes can never collide.
* **Bounded.** Spans land in a ``deque(maxlen=capacity)`` ring; old
  traces fall off the back, ``dropped`` counts them, and recording never
  blocks or allocates beyond the span itself.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "span_record"]

#: Ambient (trace_id, span_id) of the innermost open span, if any.
_CURRENT: contextvars.ContextVar[Optional[Tuple[str, str]]] = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)

_IDS = itertools.count(1)


def _new_id() -> str:
    """A process-unique id: ``<pid hex>-<counter hex>``.

    The pid prefix keeps ids from a worker process disjoint from the
    parent's without shared state or randomness.
    """
    return f"{os.getpid():x}-{next(_IDS):x}"


@dataclass
class Span:
    """One recorded stage of a traced operation.

    ``start`` is ``time.perf_counter()`` in the *recording* process —
    comparable within a process, not across the shm boundary (worker
    spans are ordered by their parent link, not their clock).
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start: float
    duration: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what crosses the pipe and what export emits)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


def span_record(
    name: str,
    trace_ctx: Tuple[str, str],
    start: float,
    duration: float,
    **attrs: Any,
) -> Dict[str, Any]:
    """Build a span dict in a process that has no :class:`Tracer`.

    Used by :mod:`repro.cluster.worker`: the worker receives
    ``trace_ctx = (trace_id, parent_span_id)`` inside the control frame,
    times its compute, and ships the resulting dict back in the reply for
    the parent to :meth:`Tracer.ingest`.

    Parameters
    ----------
    name:
        Stage name (e.g. ``"worker.compute"``).
    trace_ctx:
        ``(trace_id, parent_span_id)`` as received from the parent.
    start, duration:
        Local ``perf_counter`` timing of the stage.
    attrs:
        Free-form attributes (shard id, pid, batch size, ...).

    Returns
    -------
    dict
        A :meth:`Span.to_dict`-shaped record with a fresh pid-prefixed
        span id.
    """
    trace_id, parent_id = trace_ctx
    return {
        "trace_id": trace_id,
        "span_id": _new_id(),
        "parent_id": parent_id,
        "name": name,
        "start": start,
        "duration": duration,
        "attrs": attrs,
    }


class Tracer:
    """Span recorder with a fixed-capacity ring buffer.

    Thread-compatible for the serve layer's usage (spans are appended
    atomically to a deque); context propagation follows
    ``contextvars`` semantics — per asyncio task, not per thread pool.
    """

    def __init__(self, capacity: int = 4096) -> None:
        from collections import deque

        self.capacity = int(capacity)
        self._spans: "deque[Span]" = deque(maxlen=self.capacity)
        self.dropped_spans = 0
        self.dropped_malformed = 0

    @property
    def dropped(self) -> int:
        """Total spans lost, any cause (ring eviction + malformed ingest).

        Kept as the back-compat aggregate; :attr:`dropped_spans` (ring
        overflow — the silent one this counter used to hide) and
        :attr:`dropped_malformed` (bad worker records) split it.
        """
        return self.dropped_spans + self.dropped_malformed

    # -- recording -----------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a span around a block; parented by the ambient context.

        The yielded :class:`Span` is live: callers may add ``attrs`` or
        read ``trace_id``/``span_id`` (e.g. to serialize them into a
        control frame) while the block runs. Duration is stamped on exit,
        including the exception path.
        """
        parent = _CURRENT.get()
        if parent is None:
            trace_id, parent_id = _new_id(), None
        else:
            trace_id, parent_id = parent
        sp = Span(
            trace_id=trace_id,
            span_id=_new_id(),
            parent_id=parent_id,
            name=name,
            start=time.perf_counter(),
            duration=0.0,
            attrs=dict(attrs),
        )
        token = _CURRENT.set((sp.trace_id, sp.span_id))
        try:
            yield sp
        finally:
            _CURRENT.reset(token)
            sp.duration = time.perf_counter() - sp.start
            self._append(sp)

    def ctx(self) -> Optional[Tuple[str, str]]:
        """The ambient ``(trace_id, span_id)``, or ``None`` outside spans."""
        return _CURRENT.get()

    @contextmanager
    def attach(self, trace_ctx: Tuple[str, str]) -> Iterator[None]:
        """Adopt a foreign ``(trace_id, span_id)`` as the ambient context.

        The receiving side of a propagation boundary — a TCP server
        handling a request frame that carries the client's trace context —
        wraps its handling in ``with tracer.attach(ctx):`` so any spans it
        opens parent under the remote caller's span instead of starting a
        fresh local trace. Restores the previous ambient context on exit,
        including the exception path.
        """
        token = _CURRENT.set((str(trace_ctx[0]), str(trace_ctx[1])))
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def ingest(self, records: Iterable[Dict[str, Any]]) -> None:
        """Stitch span dicts recorded by another process into the ring.

        Accepts :func:`span_record` / :meth:`Span.to_dict` shapes;
        malformed records are dropped rather than raised (a worker reply
        must never poison the parent's tracer).
        """
        for rec in records:
            try:
                self._append(
                    Span(
                        trace_id=rec["trace_id"],
                        span_id=rec["span_id"],
                        parent_id=rec.get("parent_id"),
                        name=rec["name"],
                        start=float(rec.get("start", 0.0)),
                        duration=float(rec.get("duration", 0.0)),
                        attrs=dict(rec.get("attrs", {})),
                    )
                )
            except (KeyError, TypeError, ValueError):
                self.dropped_malformed += 1

    def _append(self, sp: Span) -> None:
        if len(self._spans) == self.capacity:
            self.dropped_spans += 1
        self._spans.append(sp)

    # -- inspection ----------------------------------------------------

    def spans(self) -> List[Span]:
        """All buffered spans, oldest first."""
        return list(self._spans)

    def traces(self) -> Dict[str, List[Span]]:
        """Buffered spans grouped by ``trace_id`` (insertion-ordered)."""
        out: Dict[str, List[Span]] = {}
        for sp in self._spans:
            out.setdefault(sp.trace_id, []).append(sp)
        return out

    def find(self, name: str) -> List[Span]:
        """Buffered spans whose stage name equals ``name``."""
        return [sp for sp in self._spans if sp.name == name]

    def tree(self, trace_id: str) -> Dict[str, List[Span]]:
        """One trace as a ``parent span_id -> children`` adjacency map.

        Roots (no parent, or parent evicted from the ring) appear under
        the ``""`` key.

        Parameters
        ----------
        trace_id:
            The trace to materialize.

        Returns
        -------
        dict
            ``{parent_span_id_or_empty: [child spans...]}``.
        """
        spans = [sp for sp in self._spans if sp.trace_id == trace_id]
        ids = {sp.span_id for sp in spans}
        out: Dict[str, List[Span]] = {}
        for sp in spans:
            key = sp.parent_id if sp.parent_id in ids else ""
            out.setdefault(key, []).append(sp)
        return out

    def clear(self) -> None:
        """Drop every buffered span (does not reset ``dropped``)."""
        self._spans.clear()
