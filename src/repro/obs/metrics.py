"""Lock-cheap metrics registry: counters, gauges and fixed-bucket histograms.

Every layer of the stack previously kept its own ad-hoc ``stats()`` dict
(engine view counters, batcher flush counters, server latency series,
cluster IPC counters) with its own names and shapes. This module is the
one schema they all now feed: a :class:`MetricsRegistry` of named metric
families, each optionally labelled (operation kind, shard id, flush
reason), collected on demand and rendered by :mod:`repro.obs.export` as
JSON or Prometheus text exposition.

Design constraints, in order:

* **Hot-path cost.** Updates are plain attribute arithmetic on
  pre-resolved children (``family.labels("get")`` is called once at
  instrumentation time, never per request) — no locks, no string
  formatting, no allocation. CPython's GIL makes ``+=`` on a float
  attribute safe enough for monitoring counters (a torn read is
  impossible; a lost increment under free-threading would be, which is an
  accepted monitoring-grade trade documented here rather than paid for
  with a mutex on every request).
* **Pull, don't push.** State that already lives somewhere (an engine's
  view-cache counters, a server's latency summary) is exported through
  :meth:`MetricsRegistry.register_callback` — read at collection time —
  instead of being double-counted into the registry on every update.
* **Collection is the cold path.** ``collect()`` snapshots values and
  resolves callbacks; a callback that raises is skipped (a closed cluster
  engine must not take the whole telemetry endpoint down with it).
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_US",
]

#: Default histogram bucket upper bounds for microsecond latencies —
#: roughly logarithmic from sub-batch-flush (50us) to multi-second stalls.
DEFAULT_LATENCY_BUCKETS_US: Tuple[float, ...] = (
    50.0, 100.0, 250.0, 500.0, 1_000.0, 2_500.0, 5_000.0,
    10_000.0, 25_000.0, 50_000.0, 100_000.0, 1_000_000.0,
)


class Counter:
    """A monotonically increasing value (one labelled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (must be >= 0; not enforced on the hot path)."""
        self.value += n


class Gauge:
    """A value that can go up and down (one labelled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, v: float) -> None:
        """Replace the current value."""
        self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        """Add ``n`` (may be negative)."""
        self.value += n


class Histogram:
    """Fixed-bucket histogram (one labelled child of a family).

    Buckets are cumulative at export time (Prometheus ``le`` semantics);
    internally each slot counts its own interval plus one overflow slot,
    so ``observe`` is a single ``bisect`` + increment.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, v)] += 1
        self.sum += v
        self.count += 1

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a whole batch of observations in one pass.

        Vectorized over NumPy when the batch is an ndarray (the serve
        layer's per-flush latency fan-out), else a plain loop.
        """
        arr = np.asarray(values, dtype=np.float64)
        if arr.size == 0:
            return
        slots = np.searchsorted(self.buckets, arr, side="left")
        for s in slots:
            self.counts[s] += 1
        self.sum += float(arr.sum())
        self.count += arr.size

    def cumulative(self) -> List[int]:
        """Bucket counts as cumulative ``le`` totals (excludes overflow)."""
        out: List[int] = []
        total = 0
        for c in self.counts[:-1]:
            total += c
            out.append(total)
        return out


#: Metric kinds a family may carry.
_KINDS = ("counter", "gauge", "histogram", "callback")


class MetricFamily:
    """All children of one named metric, keyed by their label values.

    Callers resolve children once (``family.labels("get")``) and keep the
    reference; per-request work then touches only the child.
    """

    __slots__ = ("name", "kind", "help", "labelnames", "buckets",
                 "_children", "_callback", "_lock")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Tuple[str, ...] = (),
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self.buckets = buckets
        self._children: Dict[Tuple[str, ...], Any] = {}
        self._callback: Optional[Callable[[], Any]] = None
        self._lock = threading.Lock()

    def labels(self, *values: Any) -> Any:
        """The child for one label-value tuple, created on first use.

        Parameters
        ----------
        values:
            One value per declared label name (stringified for export).

        Returns
        -------
        Counter | Gauge | Histogram
            The live child; callers should cache it, not re-resolve per
            update.
        """
        key = tuple(str(v) for v in values)
        if len(key) != len(self.labelnames):
            raise InvalidParameterError(
                f"{self.name}: expected {len(self.labelnames)} label "
                f"values {self.labelnames}, got {values!r}"
            )
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    def _make_child(self) -> Any:
        if self.kind == "counter":
            return Counter()
        if self.kind == "gauge":
            return Gauge()
        return Histogram(self.buckets or DEFAULT_LATENCY_BUCKETS_US)

    def samples(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Snapshot of ``(label_values, child)`` pairs.

        For callback families the callback is resolved here: it may
        return a scalar (one unlabelled sample) or a dict mapping
        label-value tuples to values. A raising callback yields no
        samples rather than poisoning the collection.
        """
        if self.kind != "callback":
            return list(self._children.items())
        if self._callback is None:
            return []
        try:
            result = self._callback()
        except Exception:  # collection must survive a dead source
            return []
        if isinstance(result, dict):
            out = []
            for key, value in result.items():
                if not isinstance(key, tuple):
                    key = (key,)
                out.append((tuple(str(k) for k in key), _Value(float(value))))
            return out
        return [((), _Value(float(result)))]


class _Value:
    """Immutable sample wrapper produced by callback resolution."""

    __slots__ = ("value",)

    def __init__(self, value: float) -> None:
        self.value = value


class MetricsRegistry:
    """Named metric families, created idempotently and collected on demand.

    ``counter`` / ``gauge`` / ``histogram`` get-or-create a family: asking
    for an existing name with the same kind returns the existing family
    (so two components can share one metric), while a kind mismatch is a
    typed error. ``register_callback`` wires pull-based sources in;
    re-registering a callback name replaces the previous source (an
    engine rebuilt over the same registry wins).
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------

    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Tuple[str, ...],
        buckets: Optional[Tuple[float, ...]] = None,
    ) -> MetricFamily:
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if fam.kind != kind:
                    raise InvalidParameterError(
                        f"metric {name!r} already registered as "
                        f"{fam.kind!r}, not {kind!r}"
                    )
                return fam
            fam = MetricFamily(name, kind, help, labels, buckets)
            self._families[name] = fam
            return fam

    def counter(
        self, name: str, help: str = "", labels: Tuple[str, ...] = ()
    ) -> MetricFamily:
        """Get-or-create a counter family."""
        return self._family(name, "counter", help, tuple(labels))

    def gauge(
        self, name: str, help: str = "", labels: Tuple[str, ...] = ()
    ) -> MetricFamily:
        """Get-or-create a gauge family."""
        return self._family(name, "gauge", help, tuple(labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Tuple[str, ...] = (),
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_US,
    ) -> MetricFamily:
        """Get-or-create a fixed-bucket histogram family.

        Parameters
        ----------
        buckets:
            Strictly increasing finite upper bounds; observations above
            the last bound land in the implicit overflow bucket.
        """
        buckets = tuple(float(b) for b in buckets)
        if any(not math.isfinite(b) for b in buckets) or any(
            b1 <= b0 for b0, b1 in zip(buckets, buckets[1:])
        ):
            raise InvalidParameterError(
                f"histogram buckets must be finite and strictly "
                f"increasing, got {buckets}"
            )
        fam = self._family(name, "histogram", help, tuple(labels), buckets)
        return fam

    def register_callback(
        self,
        name: str,
        fn: Callable[[], Any],
        help: str = "",
        labels: Tuple[str, ...] = (),
    ) -> None:
        """Register a pull-based gauge source resolved at collection time.

        ``fn`` returns either a scalar (one unlabelled sample) or a dict
        mapping label-value tuples (or bare strings, for one label) to
        values. Re-registering ``name`` replaces the previous source.
        """
        with self._lock:
            fam = self._families.get(name)
            if fam is None or fam.kind != "callback":
                fam = MetricFamily(name, "callback", help, tuple(labels))
                self._families[name] = fam
            fam._callback = fn

    # -- collection ----------------------------------------------------

    def collect(self) -> List[MetricFamily]:
        """Registered families in name order (the export walk order)."""
        with self._lock:
            return [self._families[k] for k in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def get(self, name: str) -> Optional[MetricFamily]:
        """The family registered under ``name``, or ``None``."""
        return self._families.get(name)
