"""Tail-latency attribution: a slow-query log for index workloads.

Aggregates (histograms, p99 gauges) say *that* the tail moved; this
module says *why*. :class:`SlowOpLog` tracks an online p99 estimate over
a sliding sample window and retains a full record — span tree plus
per-stage breakdown — only for operations slower than that adaptive
threshold, in a bounded ring with a drop counter. The serve layer feeds
it in two steps:

* :meth:`SlowOpLog.observe` on the hot path — one vectorized pass over a
  flush cycle's per-op latencies; ops over threshold become *pending
  marks* (cheap tuples, capped per cycle).
* :meth:`SlowOpLog.finalize` on the cold path, after the flush span has
  closed — materializes each mark into a record by pulling its span tree
  out of the tracer ring and attributing the latency to stages: queue
  wait (batcher pending time), route (cluster fan-out bookkeeping),
  worker compute (possibly in a foreign process) and gather.

The threshold starts at ``+inf`` (log nothing) until ``min_samples``
latencies have been seen, so cold starts never spam the ring.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["SlowOpLog"]

#: Span names whose durations map onto the per-stage breakdown.
_STAGE_COMPUTE = "worker.compute"
_STAGE_GATHER = "cluster.gather"
_STAGE_ROUTE_PARENTS = ("cluster.get_batch", "engine.get_batch")


class SlowOpLog:
    """Adaptive slow-op ring: online p99 threshold, bounded retention.

    The p99 estimate is recomputed from a fixed-size sample window every
    ``refresh`` observations (one ``np.percentile`` over ≤ ``window``
    floats — cold-path cost, amortized across hundreds of batches). The
    record ring holds ``capacity`` entries; overflow evicts the oldest
    and increments ``dropped``.
    """

    def __init__(
        self,
        capacity: int = 256,
        *,
        window: int = 2048,
        min_samples: int = 64,
        refresh: int = 256,
        percentile: float = 99.0,
        max_marks_per_cycle: int = 4,
    ) -> None:
        self.capacity = int(capacity)
        self._ring: "deque[Dict[str, Any]]" = deque(maxlen=self.capacity)
        self.dropped = 0
        self.percentile = float(percentile)
        self.min_samples = int(min_samples)
        self.refresh = int(refresh)
        self.max_marks_per_cycle = int(max_marks_per_cycle)
        self._window = np.empty(int(window), dtype=np.float64)
        self._wpos = 0
        self._wfill = 0
        self._since_refresh = 0
        self.threshold_us = math.inf
        self.p99_us: Optional[float] = None
        self.observed = 0
        self._pending: List[Dict[str, Any]] = []

    # -- hot path ------------------------------------------------------

    def observe(
        self,
        kind: str,
        latencies_us: np.ndarray,
        *,
        trace_id: Optional[str] = None,
        keys: Optional[np.ndarray] = None,
    ) -> None:
        """Fold one cycle's per-op latencies in; mark ops over threshold.

        ``keys`` (when given, aligned with ``latencies_us``) lets the
        mark carry the slowest op's key and the cycle's key range.
        Everything here is one vectorized pass plus at most
        ``max_marks_per_cycle`` small dict builds.
        """
        arr = np.asarray(latencies_us, dtype=np.float64).ravel()
        n = arr.size
        if n == 0:
            return
        self.observed += n
        self._fill_window(arr)
        self._since_refresh += n
        if self._since_refresh >= self.refresh or self.p99_us is None:
            self._refresh_threshold()
        if not math.isfinite(self.threshold_us):
            return
        over = np.flatnonzero(arr > self.threshold_us)
        if over.size == 0:
            return
        if over.size > self.max_marks_per_cycle:
            worst = np.argpartition(arr[over], -self.max_marks_per_cycle)
            over = over[worst[-self.max_marks_per_cycle:]]
        karr = None
        if keys is not None:
            try:
                karr = np.asarray(keys, dtype=np.float64).ravel()
            except (TypeError, ValueError):
                karr = None  # unroutable keys: mark without a key range
            else:
                if karr.size != n:
                    karr = None
        for i in over:
            self._pending.append(
                {
                    "kind": kind,
                    "latency_us": float(arr[i]),
                    "threshold_us": self.threshold_us,
                    "trace_id": trace_id,
                    "key": None if karr is None else float(karr[i]),
                    "key_lo": None if karr is None else float(karr.min()),
                    "key_hi": None if karr is None else float(karr.max()),
                    "n_ops": int(n),
                }
            )

    def _fill_window(self, arr: np.ndarray) -> None:
        w = self._window
        cap = w.size
        if arr.size >= cap:
            w[:] = arr[-cap:]
            self._wpos = 0
            self._wfill = cap
            return
        end = self._wpos + arr.size
        if end <= cap:
            w[self._wpos:end] = arr
        else:
            head = cap - self._wpos
            w[self._wpos:] = arr[:head]
            w[: end - cap] = arr[head:]
        self._wpos = end % cap
        self._wfill = min(cap, self._wfill + arr.size)

    def _refresh_threshold(self) -> None:
        self._since_refresh = 0
        if self._wfill < self.min_samples:
            return
        self.p99_us = float(
            np.percentile(self._window[: self._wfill], self.percentile)
        )
        self.threshold_us = self.p99_us

    # -- cold path -----------------------------------------------------

    def finalize(self, tracer: Optional[Any] = None) -> int:
        """Materialize pending marks into records; returns how many.

        Called after the cycle's spans have closed, so the tracer ring
        holds the complete trace. Without a tracer the record keeps the
        mark fields and an empty span list.
        """
        if not self._pending:
            return 0
        marks, self._pending = self._pending, []
        made = 0
        for mark in marks:
            spans: List[Dict[str, Any]] = []
            if tracer is not None and mark["trace_id"] is not None:
                spans = [
                    sp.to_dict()
                    for sp in tracer.spans()
                    if sp.trace_id == mark["trace_id"]
                ]
            record = dict(mark)
            record["stages_us"] = self._stage_breakdown(spans)
            record["spans"] = spans
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(record)
            made += 1
        return made

    @staticmethod
    def _stage_breakdown(spans: List[Dict[str, Any]]) -> Dict[str, float]:
        """Split a trace into queue wait / route / compute / gather (µs)."""
        queue = 0.0
        compute = 0.0
        gather = 0.0
        route_total = 0.0
        for sp in spans:
            name = sp.get("name", "")
            dur_us = float(sp.get("duration", 0.0)) * 1e6
            if name == "serve.flush":
                queue = float(sp.get("attrs", {}).get("queue_wait_us", 0.0))
            elif name == _STAGE_COMPUTE:
                compute += dur_us
            elif name == _STAGE_GATHER:
                gather += dur_us
            elif name in _STAGE_ROUTE_PARENTS:
                route_total += dur_us
        return {
            "queue_wait_us": queue,
            "route_us": max(0.0, route_total - compute - gather),
            "worker_compute_us": compute,
            "gather_us": gather,
        }

    # -- reporting -----------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Retained slow-op records, oldest first (JSON-able dicts)."""
        return list(self._ring)

    def summary(self) -> Dict[str, Any]:
        """Compact state for ``stats()``: counts, threshold, drops."""
        return {
            "count": len(self._ring),
            "capacity": self.capacity,
            "dropped": self.dropped,
            "observed": self.observed,
            "threshold_us": (
                None if not math.isfinite(self.threshold_us)
                else self.threshold_us
            ),
            "p99_estimate_us": self.p99_us,
        }

    def clear(self) -> None:
        """Drop retained records and pending marks (threshold unchanged)."""
        self._ring.clear()
        self._pending.clear()
