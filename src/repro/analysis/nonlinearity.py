"""The paper's non-linearity ratio (Section 7.1.1, Figure 8).

For an error threshold ``e`` the measure is the number of segments the
dataset needs, normalized by the number of segments a dataset of the same
size with periodicity equal to ``e`` would need — the worst case, which by
Theorem 3.1 is one segment per ``e + 1`` elements:

    ``ratio(e) = S_e / (|D| / (e + 1))``

A ratio near 1 means the data looks maximally non-linear at that scale
(periodicity comparable to ``e``); a ratio near 0 means segments cover far
more than the guaranteed minimum, i.e. the data is locally linear at that
scale. Plotting the ratio over a log-spaced error grid shows each dataset's
periodicity signature: the paper finds one pronounced bump for IoT
(human day/night rhythm), several bumps for Weblogs, and a flat low curve
for Maps at small scales.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.core.segmentation import shrinking_cone

__all__ = ["nonlinearity_ratio", "nonlinearity_profile", "log_error_grid"]


def nonlinearity_ratio(keys, error: float, *, accept: str = "paper") -> float:
    """Non-linearity of ``keys`` at scale ``error`` (in ``(0, 1]``-ish).

    The ratio can exceed 1 slightly only for degenerate inputs shorter than
    one worst-case segment; for real data it lies in ``(0, 1]``.
    """
    n = len(keys)
    if n == 0:
        raise InvalidParameterError("nonlinearity_ratio of empty dataset")
    segments = len(shrinking_cone(keys, error, accept=accept))
    worst_case = n / (float(error) + 1.0)
    return segments / worst_case


def log_error_grid(
    lo_exp: int = 1, hi_exp: int = 6, per_decade: int = 2
) -> List[float]:
    """Log-spaced error grid ``10^lo_exp .. 10^hi_exp`` (Figure 8's x-axis)."""
    if hi_exp < lo_exp or per_decade < 1:
        raise InvalidParameterError("need hi_exp >= lo_exp and per_decade >= 1")
    points = np.logspace(lo_exp, hi_exp, (hi_exp - lo_exp) * per_decade + 1)
    return [float(p) for p in points]


def nonlinearity_profile(
    keys,
    errors: Sequence[float] | None = None,
    *,
    accept: str = "paper",
) -> Dict[float, float]:
    """``{error: ratio}`` over a grid — one Figure 8 curve.

    Errors larger than the dataset are skipped (a single segment is then
    the only possibility and the ratio carries no information).
    """
    if errors is None:
        errors = log_error_grid()
    out: Dict[float, float] = {}
    n = len(keys)
    for error in errors:
        if error >= n:
            continue
        out[float(error)] = nonlinearity_ratio(keys, error, accept=accept)
    return out
