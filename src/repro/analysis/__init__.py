"""Analysis utilities: the non-linearity measure and sweep helpers."""

from repro.analysis.nonlinearity import (
    log_error_grid,
    nonlinearity_profile,
    nonlinearity_ratio,
)
from repro.analysis.sweep import crossover, geometric_grid, sweep

__all__ = [
    "crossover",
    "geometric_grid",
    "log_error_grid",
    "nonlinearity_profile",
    "nonlinearity_ratio",
    "sweep",
]
