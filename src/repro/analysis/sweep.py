"""Parameter-sweep helpers shared by benchmarks and examples."""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Sequence

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["geometric_grid", "sweep", "crossover"]


def geometric_grid(lo: float, hi: float, per_decade: int = 3) -> List[float]:
    """Log-spaced grid from ``lo`` to ``hi`` inclusive."""
    if lo <= 0 or hi < lo or per_decade < 1:
        raise InvalidParameterError("need 0 < lo <= hi and per_decade >= 1")
    n = max(2, int(round(np.log10(hi / lo) * per_decade)) + 1)
    return [float(x) for x in np.geomspace(lo, hi, n)]


def sweep(
    fn: Callable[[Any], Dict[str, Any]],
    grid: Iterable[Any],
    param_name: str = "param",
) -> List[Dict[str, Any]]:
    """Evaluate ``fn`` over ``grid``; one result row per grid point.

    ``fn`` returns a dict of measurements; the swept value is added under
    ``param_name``.
    """
    rows: List[Dict[str, Any]] = []
    for value in grid:
        row = dict(fn(value))
        row[param_name] = value
        rows.append(row)
    return rows


def crossover(
    xs: Sequence[float], ys_a: Sequence[float], ys_b: Sequence[float]
) -> float | None:
    """First x where series A drops to or below series B (None if never).

    Used to report "where curves cross" in the shape checks of
    EXPERIMENTS.md (e.g. where the FITing-Tree matches the full index).
    """
    if not (len(xs) == len(ys_a) == len(ys_b)):
        raise InvalidParameterError("crossover needs equal-length series")
    for x, a, b in zip(xs, ys_a, ys_b):
        if a <= b:
            return float(x)
    return None
