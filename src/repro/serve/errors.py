"""Exceptions raised by the asyncio serving front-end.

Both derive from :class:`repro.core.errors.ReproError`, so callers that
already catch the package-wide base class keep working; they additionally
derive from ``RuntimeError`` because they describe the server's state, not
bad parameters.
"""

from __future__ import annotations

from repro.core.errors import ReproError

__all__ = ["ServerClosedError", "ServerOverloadedError"]


class ServerClosedError(ReproError, RuntimeError):
    """A request was submitted to a server that has been closed.

    Requests already in flight when :meth:`repro.serve.Server.close` is
    called still complete; only *new* submissions fail with this error.
    """


class ServerOverloadedError(ReproError, RuntimeError):
    """Admission was refused because the pending-request queue is full.

    Raised only in ``overload="reject"`` mode when the number of in-flight
    requests has reached ``max_pending``; in the default ``"wait"`` mode the
    caller is suspended until capacity frees up instead.
    """
