"""Latency bookkeeping for the serving front-end.

One :class:`LatencySeries` per operation kind records end-to-end request
latencies (enqueue to fan-out, so queueing and batching delay are included)
into a bounded window, and summarizes them as the percentiles a serving
benchmark plots against throughput.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict

import numpy as np

__all__ = ["LatencySeries"]

#: Percentiles reported by :meth:`LatencySeries.summary`.
_PERCENTILES = (50.0, 95.0, 99.0)


class LatencySeries:
    """Bounded sliding window of per-request latencies (seconds).

    Parameters
    ----------
    window:
        Maximum number of samples retained; older samples fall off so a
        long-running server's summary reflects recent behaviour. The
        lifetime request count is tracked separately and never truncated.
    """

    __slots__ = ("count", "_samples")

    def __init__(self, window: int = 100_000) -> None:
        self.count = 0
        self._samples: deque = deque(maxlen=window)

    def record(self, seconds: float) -> None:
        """Add one request latency (in seconds) to the window."""
        self.count += 1
        self._samples.append(seconds)

    def extend(self, latencies) -> None:
        """Add a whole batch of latencies (one dispatch's fan-out)."""
        self.count += len(latencies)
        self._samples.extend(latencies)

    def summary(self) -> Dict[str, Any]:
        """Summarize the window as microsecond percentiles.

        The percentile fields are derived from :data:`_PERCENTILES` — one
        ``p<P>_us`` key per configured percentile (``p50_us``, ``p95_us``,
        ``p99_us`` by default) — so the documented set and the reported
        keys cannot drift apart. Both the empty and populated branches
        emit the identical key set.

        Returns
        -------
        dict
            ``count`` (lifetime requests), ``window`` (samples summarized),
            ``mean_us``, one ``p<P>_us`` per percentile, and ``max_us``;
            the latency fields are 0.0 when no samples were recorded.
        """
        keys = tuple(f"p{p:g}_us" for p in _PERCENTILES)
        out: Dict[str, Any] = {"count": self.count, "window": len(self._samples)}
        if not self._samples:
            out["mean_us"] = 0.0
            for k in keys:
                out[k] = 0.0
            out["max_us"] = 0.0
            return out
        arr = np.asarray(self._samples, dtype=np.float64) * 1e6
        pcts = np.percentile(arr, _PERCENTILES)
        out["mean_us"] = round(float(arr.mean()), 2)
        for k, value in zip(keys, pcts):
            out[k] = round(float(value), 2)
        out["max_us"] = round(float(arr.max()), 2)
        return out
