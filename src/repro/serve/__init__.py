"""Asyncio serving front-end over the batch engine (layer 3 of the stack).

The stack so far: :mod:`repro.core` is the paper's FITing-Tree (layer 1),
:mod:`repro.engine` makes it batch-at-a-time and sharded (layer 2). This
package is layer 3 — the piece that turns *independent per-caller
requests* back into the batched workloads layer 2 is fast at:

* :class:`~repro.serve.batcher.RequestBatcher` — accumulates concurrent
  ``get``/``range``/``insert`` submissions into micro-batches (flush on
  size, delay, or event-loop idle), dispatches them through the engine's
  ``get_batch``/``range_batch``/``insert_batch``, and fans results back
  out per caller, with read-your-writes ordering across an insert fence;
* :class:`~repro.serve.server.Server` — the application-facing facade:
  admission control/backpressure, per-op latency percentiles, lifecycle
  (drain on close), and an optional worker-thread executor so heavy merges
  never block the event loop.

Quickstart::

    engine = ShardedEngine(keys, n_shards=4)
    async with Server(engine) as server:
        value = await server.get(keys[42])

``python -m repro.bench serve`` benchmarks this layer (naive per-request
awaits vs batched serving) and writes ``BENCH_serve.json``.
"""

from repro.api.protocol import BatchEngine, ShardDispatchEngine
from repro.serve.batcher import RequestBatcher
from repro.serve.errors import ServerClosedError, ServerOverloadedError
from repro.serve.server import Server
from repro.serve.stats import LatencySeries

__all__ = [
    "BatchEngine",
    "LatencySeries",
    "RequestBatcher",
    "Server",
    "ServerClosedError",
    "ServerOverloadedError",
    "ShardDispatchEngine",
]
