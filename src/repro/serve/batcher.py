"""Micro-batching request accumulator over the engine's batch verbs.

The engine (:class:`repro.engine.ShardedEngine`) is fast when it answers
*batches* — one vectorized pass instead of one Python descent per key — but
serving traffic arrives as independent per-caller ``await`` s. The
:class:`RequestBatcher` closes that gap: concurrent ``submit_get`` /
``submit_range`` / ``submit_insert`` / ``submit_delete`` calls park their
futures in pending lists, a flush coalesces the lists into arrays,
dispatches them through ``get_batch`` / ``range_batch`` / ``insert_batch``
/ ``delete_batch``, and fans the results back out to each caller's future.

Flush triggers (first one wins):

* **size** — pending requests reach ``max_batch``;
* **delay** — ``max_delay`` seconds elapsed since the first pending request
  (a lone request is never stranded);
* **idle** (on by default, ``eager_flush``) — the event loop ran out of
  ready work, i.e. every live producer has submitted and suspended. This is
  what makes closed-loop traffic batch perfectly at any concurrency without
  paying ``max_delay`` of added latency: with N blocked clients the batch
  is exactly N.

Ordering guarantees (read-your-writes):

* Flush cycles are serialized by an ``asyncio.Lock``; within a cycle the
  dispatch order is reads, then writes (inserts and deletes, dispatched
  as maximal same-kind runs in submission order), then *barriered* reads.
* A read submitted while writes are pending is *barriered* — held back
  until after the write dispatch — iff its key (or range) overlaps the
  pending writes' key fence ``[min, max]``. Non-overlapping reads keep
  batching ahead of the write. After each write flush, the engine's
  monotonic :attr:`~repro.engine.ShardedEngine.version` stamp is recorded
  so the barrier is observable (``stats()["barrier_version"]``).
* A read submitted *after* a flush started waits on the lock, so it always
  sees any write dispatched in that cycle.

Failure isolation: a poisoned batch (e.g. one key that cannot coerce to
float) falls back to per-request scalar verbs, so only the offending
request gets the exception and its batch-mates still succeed. For insert
batches the fallback is attempted only when the engine's version stamp
proves nothing was applied; otherwise the whole batch fails loudly rather
than risk double-applying a prefix.

Blocking: dispatch runs inline on the event loop by default (fast, and a
flush never yields mid-cycle), or on a caller-supplied single-worker
executor so a large page merge cannot stall the loop (the engine is not
thread-safe, hence single-worker; the flush lock already serializes entry).
"""

from __future__ import annotations

import asyncio
import math
import time
from functools import partial
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import InvalidParameterError, KeyNotFoundError

if TYPE_CHECKING:  # pragma: no cover - type-checker-only import
    from repro.api.protocol import BatchEngine  # noqa: F401

__all__ = ["RequestBatcher"]

#: Sentinel distinguishing "missing" from any user value or default.
_MISS = object()


def _zero() -> float:
    """Observer-less stand-in for ``time.perf_counter`` (see __init__)."""
    return 0.0


def _each(fn: Callable[..., Any], argss: List[Tuple]) -> List[Tuple[bool, Any]]:
    """Apply ``fn`` to each args tuple, isolating per-item exceptions.

    Returns one ``(ok, result_or_exception)`` pair per item. Used as the
    scalar fallback when a vectorized dispatch fails: run in a single
    executor hop, but keep failures contained to their own request.
    """
    out: List[Tuple[bool, Any]] = []
    for args in argss:
        try:
            out.append((True, fn(*args)))
        except Exception as exc:  # isolation by design
            out.append((False, exc))
    return out


class RequestBatcher:
    """Accumulate concurrent requests into micro-batches over an engine.

    Parameters
    ----------
    engine:
        Anything exposing the engine verbs — scalar ``get`` / ``insert`` /
        ``range_arrays`` plus batch ``get_batch`` / ``range_batch`` /
        ``insert_batch`` (see :class:`~repro.api.protocol.BatchEngine`),
        e.g. a :class:`~repro.engine.ShardedEngine` or
        :class:`~repro.cluster.ClusterEngine`. ``submit_delete`` further
        requires the ``delete`` / ``delete_batch`` verbs of the full
        :class:`~repro.api.protocol.EngineProtocol`.
    max_batch:
        Dispatch granularity: a flush cuts pending requests into chunks of
        at most this many; reaching it also triggers an immediate flush.
        ``1`` disables batching entirely: each request becomes its own
        event-loop task running the scalar engine verb — the per-request
        scheduling any unbatched asyncio service pays (this is the
        "naive per-request awaits" mode the serve benchmark compares
        against). Ordering still follows submission order: the tasks run
        FIFO.
    max_delay:
        Upper bound, in seconds, on how long a pending request may wait for
        batch-mates before the timer flushes it.
    eager_flush:
        Also flush when the event loop goes idle (see module doc). Disable
        to get strict size-or-delay semantics, e.g. to test the timer.
    executor:
        Optional ``concurrent.futures.Executor`` the dispatch calls run on
        (``None`` = inline on the event loop). Must be single-worker: the
        engine is not thread-safe.
    shard_executor:
        Optional *multi-worker* executor for per-shard read dispatch.
        When set — and the engine advertises
        ``shard_dispatch_safe = True`` with ``route_shards`` /
        ``get_batch_shard`` (see
        :class:`~repro.api.protocol.ShardDispatchEngine`) — a get
        flush splits its batch by owning shard and answers the shards as
        independent event-loop tasks gathered under the same fence:
        sub-batches overlap in time (real parallelism over a
        :class:`~repro.cluster.ClusterEngine`, whose workers compute in
        separate processes), while the flush-cycle ordering — reads,
        then inserts, then barriered reads — is untouched. Reads are
        idempotent, so any failure on this path falls back to the
        ordinary whole-batch dispatch.
    observer:
        Optional ``f(kind, latencies)`` called at each dispatch's fan-out
        with the list of end-to-end latencies (seconds) of the requests
        just completed; the :class:`~repro.serve.Server` wires its latency
        series in through this.
    telemetry:
        Optional :class:`repro.obs.Telemetry` bundle. ``None`` (default)
        adds nothing to the hot path. When set, the dispatch counters and
        flush-reason tallies are exported through registry callbacks, and
        in ``"full"`` mode each flush cycle records a ``serve.flush`` span
        (with its reason and queue wait) parenting per-chunk
        ``serve.dispatch`` spans — the root of the batch-lifecycle trace.

    All ``submit_*`` methods must be called from a running event loop and
    return an :class:`asyncio.Future` resolving to the operation's result.
    """

    def __init__(
        self,
        engine: "BatchEngine",
        *,
        max_batch: int = 1024,
        max_delay: float = 0.002,
        eager_flush: bool = True,
        executor: Any = None,
        shard_executor: Any = None,
        observer: Optional[Callable[[str, List[float]], None]] = None,
        telemetry: Any = None,
    ) -> None:
        if max_batch < 1:
            raise InvalidParameterError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if max_delay < 0:
            raise InvalidParameterError(
                f"max_delay must be >= 0, got {max_delay}"
            )
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        self.eager_flush = bool(eager_flush)
        self._executor = executor
        self._shard_executor = shard_executor
        self._shard_dispatch = bool(
            shard_executor is not None
            and getattr(engine, "shard_dispatch_safe", False)
            and hasattr(engine, "route_shards")
            and hasattr(engine, "get_batch_shard")
        )
        self._observer = observer
        self._telemetry = telemetry
        #: Slow-op log (mode "full" only): fed per fan-out, finalized at
        #: the end of each flush cycle once the flush span has closed.
        self._taillog = (
            getattr(telemetry, "taillog", None)
            if telemetry is not None
            else None
        )
        # Per-request enqueue timestamps exist only to feed the observer
        # (or a flush span's queue-wait attribute); with neither installed
        # the clock reads are skipped entirely (a measurable saving at
        # millions of requests).
        self._clock = (
            time.perf_counter
            if observer is not None or telemetry is not None
            else _zero
        )

        # Pending ops: (key, default, future, t0) / (lo, hi, future, t0) /
        # (key, value, future, t0). Writes keep submission order in one
        # list of ("insert" | "delete", op) pairs so an insert and a
        # delete of the same key dispatch in the order they arrived.
        self._gets: List[Tuple] = []
        self._ranges: List[Tuple] = []
        self._writes: List[Tuple[str, Tuple]] = []
        #: Reads overlapping the pending writes' key fence; dispatched
        #: after the writes in the same flush cycle (read-your-writes).
        self._held_gets: List[Tuple] = []
        self._held_ranges: List[Tuple] = []
        self._fence_lo = math.inf
        self._fence_hi = -math.inf

        self._timer: Optional[asyncio.TimerHandle] = None
        self._flush_scheduled = False
        self._gen = 0  # submission generation, for idle-flush detection
        self._idle_armed = False
        self._n_pending = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        # Created lazily on first flush: on Python 3.9 an asyncio.Lock
        # built outside a running loop binds the wrong loop.
        self._lock: Optional[asyncio.Lock] = None
        #: In-flight per-request tasks (max_batch=1 mode only); drain()
        #: awaits them so close still guarantees completion.
        self._solo_tasks: set = set()
        #: Reason the next flush cycle will attribute itself to; stamped
        #: by whichever trigger scheduled the flush (first one wins).
        self._flush_reason: Optional[str] = None
        self._stats: Dict[str, Any] = {
            "flushes": 0,
            "batches": {"get": 0, "range": 0, "insert": 0, "delete": 0},
            "ops": {"get": 0, "range": 0, "insert": 0, "delete": 0},
            "flush_reasons": {"size": 0, "timer": 0, "idle": 0, "drain": 0},
            "max_batch_observed": 0,
            "scalar_fallbacks": 0,
            "shard_dispatches": 0,
            "barrier_held": 0,
            "barrier_version": None,
        }
        if telemetry is not None:
            telemetry.registry.register_callback(
                "repro_serve_batcher",
                self._collect_counters,
                help="RequestBatcher dispatch counters.",
                labels=("counter",),
            )
            telemetry.registry.register_callback(
                "repro_serve_flush_total",
                lambda: dict(self._stats["flush_reasons"]),
                help="Flush cycles by trigger reason.",
                labels=("reason",),
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of requests accepted but not yet dispatched."""
        return self._n_pending

    def stats(self) -> Dict[str, Any]:
        """Dispatch counters: flushes, batches and ops per kind, flush
        cycles by trigger reason, the largest batch observed, scalar
        fallbacks taken, reads held at the write barrier, and the engine
        version stamped by the last insert flush.

        Returns
        -------
        dict
            A snapshot (safe to mutate) of the counters listed above plus
            ``pending``, the current queue depth.
        """
        out = dict(self._stats)
        out["batches"] = dict(self._stats["batches"])
        out["ops"] = dict(self._stats["ops"])
        out["flush_reasons"] = dict(self._stats["flush_reasons"])
        out["pending"] = self.pending
        return out

    def _collect_counters(self) -> Dict[str, float]:
        """Flatten the scalar dispatch counters for the metrics callback."""
        s = self._stats
        out: Dict[str, float] = {
            "flushes": s["flushes"],
            "max_batch_observed": s["max_batch_observed"],
            "scalar_fallbacks": s["scalar_fallbacks"],
            "shard_dispatches": s["shard_dispatches"],
            "barrier_held": s["barrier_held"],
            "pending": self._n_pending,
        }
        for kind, v in s["ops"].items():
            out[f"ops_{kind}"] = v
        for kind, v in s["batches"].items():
            out[f"batches_{kind}"] = v
        return out

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _get_loop(self) -> asyncio.AbstractEventLoop:
        loop = self._loop
        if loop is None:
            # Cached on first submission; a batcher serves one event loop
            # for its lifetime (timers and futures are loop-bound anyway).
            loop = self._loop = asyncio.get_running_loop()
        return loop

    def submit_get(self, key: Any, default: Any = None) -> asyncio.Future:
        """Enqueue a point lookup; resolves to its value (or ``default``).

        The hottest entry point: the ``_after_submit`` trigger logic is
        inlined here (and only here) to keep per-request overhead down.
        """
        loop = self._loop
        if loop is None:
            loop = self._get_loop()
        fut = loop.create_future()
        op = (key, default, fut, self._clock())
        if self.max_batch == 1:
            self._solo(loop, self._dispatch_gets, op)
            return fut
        if self._writes and self._read_overlaps_fence(key, key):
            self._held_gets.append(op)
            self._stats["barrier_held"] += 1
        else:
            self._gets.append(op)
        self._gen += 1
        n = self._n_pending = self._n_pending + 1
        if n >= self.max_batch:
            self._schedule_flush("size")
        else:
            if self._timer is None and not self._flush_scheduled:
                self._timer = loop.call_later(
                    self.max_delay, self._timer_fired
                )
            if self.eager_flush and not self._idle_armed:
                self._idle_armed = True
                loop.call_soon(self._idle_fired, self._gen)
        return fut

    def submit_range(self, lo: Any, hi: Any) -> asyncio.Future:
        """Enqueue a range scan; resolves to a ``(keys, values)`` pair."""
        loop = self._get_loop()
        fut = loop.create_future()
        op = (lo, hi, fut, self._clock())
        if self.max_batch == 1:
            self._solo(loop, self._dispatch_ranges, op)
            return fut
        if self._writes and self._read_overlaps_fence(lo, hi):
            self._held_ranges.append(op)
            self._stats["barrier_held"] += 1
        else:
            self._ranges.append(op)
        self._after_submit(loop)
        return fut

    def submit_insert(self, key: Any, value: Any = None) -> asyncio.Future:
        """Enqueue an insert; resolves to ``None`` once applied."""
        loop = self._get_loop()
        fut = loop.create_future()
        if self.max_batch == 1:
            self._solo(loop, self._dispatch_inserts, (key, value, fut, self._clock()))
            return fut
        self._writes.append(("insert", (key, value, fut, self._clock())))
        self._widen_fence(key)
        self._after_submit(loop)
        return fut

    def submit_delete(self, key: Any) -> asyncio.Future:
        """Enqueue a delete; resolves to the deleted value once applied.

        An absent key rejects that caller's future with
        :class:`~repro.core.errors.KeyNotFoundError` without affecting
        batch-mates. Deletes share the inserts' key fence, so a read
        submitted after a delete of an overlapping key is dispatched
        after it (read-your-writes for removals too).
        """
        loop = self._get_loop()
        fut = loop.create_future()
        if self.max_batch == 1:
            self._solo(loop, self._dispatch_deletes, (key, None, fut, self._clock()))
            return fut
        self._writes.append(("delete", (key, None, fut, self._clock())))
        self._widen_fence(key)
        self._after_submit(loop)
        return fut

    def _widen_fence(self, key: Any) -> None:
        """Grow the pending-writes key fence to cover ``key``."""
        try:
            fk = float(key)
        except (TypeError, ValueError):
            # Unroutable key: widen the fence to everything so no read
            # can jump ahead of a write we cannot reason about.
            self._fence_lo, self._fence_hi = -math.inf, math.inf
        else:
            self._fence_lo = min(self._fence_lo, fk)
            self._fence_hi = max(self._fence_hi, fk)

    def _solo(self, loop: asyncio.AbstractEventLoop, dispatch, op: Tuple) -> None:
        """Per-request dispatch (``max_batch=1``): one task per request.

        Tasks are created in submission order and each runs its scalar
        dispatch to completion on first step (inline execution never
        yields; a single-worker executor serializes FIFO), so ordering —
        including read-your-writes — matches submission order without the
        fence machinery.
        """
        task = loop.create_task(dispatch([op]))
        self._solo_tasks.add(task)
        task.add_done_callback(self._solo_tasks.discard)

    def _read_overlaps_fence(self, lo: Any, hi: Any) -> bool:
        """Whether a read of ``[lo, hi]`` must wait for pending inserts."""
        try:
            flo = -math.inf if lo is None else float(lo)
            fhi = math.inf if hi is None else float(hi)
        except (TypeError, ValueError):
            return True  # unroutable read: stay ordered, it will fail anyway
        return not (fhi < self._fence_lo or flo > self._fence_hi)

    # ------------------------------------------------------------------
    # Flush triggers
    # ------------------------------------------------------------------

    def _after_submit(self, loop: asyncio.AbstractEventLoop) -> None:
        self._gen += 1
        self._n_pending += 1
        if self._n_pending >= self.max_batch:
            self._schedule_flush("size")
            return
        if self._timer is None and not self._flush_scheduled:
            self._timer = loop.call_later(self.max_delay, self._timer_fired)
        if self.eager_flush and not self._idle_armed:
            self._idle_armed = True
            loop.call_soon(self._idle_fired, self._gen)

    def _timer_fired(self) -> None:
        self._timer = None
        if self._n_pending:
            self._schedule_flush("timer")

    def _idle_fired(self, gen: int) -> None:
        # Runs after every currently-runnable task had a chance to submit;
        # if nothing new arrived since, producers are all suspended and
        # waiting on us — flush now rather than in max_delay. At most one
        # idle probe is in flight: it re-arms itself while submissions
        # keep landing, so N concurrent producers cost ~2 probes per
        # cycle, not N.
        if gen != self._gen and self._n_pending:
            self._loop.call_soon(self._idle_fired, self._gen)
            return
        self._idle_armed = False
        if gen == self._gen and self._n_pending and not self._flush_scheduled:
            self._schedule_flush("idle")

    def _schedule_flush(self, reason: str = "size") -> None:
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        self._flush_reason = reason
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._get_loop().create_task(self._flush())

    async def drain(self) -> None:
        """Flush until nothing is pending (used by ``Server.close``)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        while self.pending:
            if not self._flush_scheduled:
                self._flush_reason = "drain"
            await self._flush()
        while self._solo_tasks:
            await asyncio.gather(*list(self._solo_tasks))
        if self._taillog is not None:
            # Solo-mode (max_batch=1) marks never pass through a flush
            # cycle; sweep them up here so close() leaves nothing pending.
            tel = self._telemetry
            self._taillog.finalize(tel.tracer if tel is not None else None)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _flush(self) -> None:
        if self._lock is None:
            self._lock = asyncio.Lock()
        async with self._lock:
            self._flush_scheduled = False
            await self._dispatch_cycle()
        # Requests that arrived mid-cycle scheduled their own flush (the
        # flag was cleared above); this is only a belt-and-braces rearm
        # (attributed to the timer it replaces).
        if self.pending and not self._flush_scheduled and self._timer is None:
            self._schedule_flush("timer")

    async def _dispatch_cycle(self) -> None:
        reason = self._flush_reason or "drain"
        self._flush_reason = None
        gets, self._gets = self._gets, []
        ranges, self._ranges = self._ranges, []
        writes, self._writes = self._writes, []
        held_gets, self._held_gets = self._held_gets, []
        held_ranges, self._held_ranges = self._held_ranges, []
        self._n_pending = 0
        self._fence_lo, self._fence_hi = math.inf, -math.inf
        if not (gets or ranges or writes or held_gets or held_ranges):
            return
        self._stats["flushes"] += 1
        self._stats["flush_reasons"][reason] = (
            self._stats["flush_reasons"].get(reason, 0) + 1
        )
        tel = self._telemetry
        tracer = tel.tracer if tel is not None else None
        if tracer is None:
            await self._dispatch_all(gets, ranges, writes, held_gets, held_ranges)
            return
        # The serve.flush span is the root of one batch-lifecycle trace;
        # the ambient contextvar parents every serve.dispatch (and, via
        # the inline engine path, cluster.get_batch / worker.compute)
        # span recorded underneath this cycle.
        n = (
            len(gets) + len(ranges) + len(writes)
            + len(held_gets) + len(held_ranges)
        )
        with tracer.span(
            "serve.flush",
            reason=reason,
            n=n,
            barriered=len(held_gets) + len(held_ranges),
        ) as sp:
            t0s = [op[3] for op in gets + ranges + held_gets + held_ranges]
            t0s += [op[3] for _, op in writes]
            sp.attrs["queue_wait_us"] = (self._clock() - min(t0s)) * 1e6
            await self._dispatch_all(gets, ranges, writes, held_gets, held_ranges)
        if self._taillog is not None:
            # Outside the span block: the flush span has closed, so the
            # tracer ring now holds the complete trace for each mark.
            self._taillog.finalize(tracer)

    async def _dispatch_all(
        self,
        gets: List[Tuple],
        ranges: List[Tuple],
        writes: List[Tuple[str, Tuple]],
        held_gets: List[Tuple],
        held_ranges: List[Tuple],
    ) -> None:
        """One cycle's dispatch sequence: reads, write runs, barriered reads."""
        await self._dispatch_gets(gets)
        await self._dispatch_ranges(ranges)
        # Writes dispatch as maximal same-kind runs in submission order,
        # so an insert and a delete of the same key apply as submitted.
        i = 0
        while i < len(writes):
            kind = writes[i][0]
            j = i
            while j < len(writes) and writes[j][0] == kind:
                j += 1
            run = [op for _, op in writes[i:j]]
            if kind == "insert":
                await self._dispatch_inserts(run)
            else:
                await self._dispatch_deletes(run)
            i = j
        # Read-your-writes: reads that overlapped the writes go last.
        await self._dispatch_gets(held_gets)
        await self._dispatch_ranges(held_ranges)

    async def _run(self, fn: Callable[..., Any], *args: Any) -> Any:
        if self._executor is None:
            return fn(*args)
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, fn, *args
        )

    async def offload(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run ``fn(*args)`` the way a dispatch would.

        Inline on the event loop when no executor is configured, else on
        the dispatch executor — e.g. ``Server.warm`` offloads
        ``engine.warm`` this way so a large snapshot build cannot stall
        the loop.
        """
        return await self._run(fn, *args)

    def _resolve(self, op: Tuple, kind: str, value: Any) -> None:
        fut = op[2]
        if not fut.done():
            fut.set_result(value)
        self._finish(op, kind)

    def _reject(self, op: Tuple, kind: str, exc: BaseException) -> None:
        fut = op[2]
        if not fut.done():
            fut.set_exception(exc)
        self._finish(op, kind)

    def _finish(self, op: Tuple, kind: str) -> None:
        self._stats["ops"][kind] += 1
        if self._observer is None and self._taillog is None:
            return
        latency = self._clock() - op[3]
        if self._observer is not None:
            self._observer(kind, [latency])
        if self._taillog is not None:
            ctx = self._telemetry.ctx()
            self._taillog.observe(
                kind,
                np.asarray([latency * 1e6]),
                trace_id=None if ctx is None else ctx[0],
                keys=[op[0]],
            )

    def _note_batch(self, kind: str, size: int) -> None:
        self._stats["batches"][kind] += 1
        if size > self._stats["max_batch_observed"]:
            self._stats["max_batch_observed"] = size

    def _chunks(self, ops: List[Tuple]) -> List[List[Tuple]]:
        if len(ops) <= self.max_batch:
            return [ops] if ops else []
        return [
            ops[i : i + self.max_batch]
            for i in range(0, len(ops), self.max_batch)
        ]

    def _fan_out(self, chunk: List[Tuple], kind: str, values) -> None:
        """Resolve a whole chunk's futures and record stats in bulk.

        ``values`` is indexable per op (array or list); the single
        ``clock()`` here is accurate because batch-mates complete at the
        same instant by construction.
        """
        now = self._clock()
        observer = self._observer
        taillog = self._taillog
        latencies = (
            [] if observer is not None or taillog is not None else None
        )
        for op, value in zip(chunk, values):
            fut = op[2]
            if not fut.done():
                fut.set_result(value)
            if latencies is not None:
                latencies.append(now - op[3])
        self._stats["ops"][kind] += len(chunk)
        if observer is not None:
            observer(kind, latencies)
        if taillog is not None:
            # op[0] is the key (or a range's lo bound) — enough for the
            # slow record to carry the op's key range.
            ctx = self._telemetry.ctx()
            taillog.observe(
                kind,
                np.asarray(latencies, dtype=np.float64) * 1e6,
                trace_id=None if ctx is None else ctx[0],
                keys=[op[0] for op in chunk],
            )

    async def _dispatch_gets_sharded(self, chunk: List[Tuple]) -> bool:
        """Answer one get chunk as concurrent per-shard tasks.

        Splits the chunk by owning shard (``engine.route_shards``) and
        runs one ``engine.get_batch_shard`` per shard on the multi-worker
        shard executor, gathered before the flush cycle moves on — the
        sub-batches overlap in time but stay inside this cycle's fence.
        Returns False (without resolving anything) when the chunk cannot
        take this path — unroutable keys, or any dispatch failure; reads
        are idempotent, so the caller just falls through to the ordinary
        whole-batch dispatch.
        """
        engine = self.engine
        try:
            q = np.asarray([op[0] for op in chunk], dtype=np.float64)
            sid = engine.route_shards(q)
        except Exception:
            return False
        loop = asyncio.get_running_loop()
        groups: List[np.ndarray] = []
        futures = []
        for s in np.unique(sid):
            idx = np.flatnonzero(sid == s)
            groups.append(idx)
            futures.append(
                loop.run_in_executor(
                    self._shard_executor,
                    engine.get_batch_shard,
                    int(s),
                    q[idx],
                    _MISS,
                )
            )
        try:
            results = await asyncio.gather(*futures)
        except Exception:
            await asyncio.gather(*futures, return_exceptions=True)
            return False
        values: List[Any] = [None] * len(chunk)
        for idx, res in zip(groups, results):
            if res.dtype == object:
                for pos, slot in enumerate(idx.tolist()):
                    v = res[pos]
                    values[slot] = chunk[slot][1] if v is _MISS else v
            else:
                for pos, slot in enumerate(idx.tolist()):
                    values[slot] = res[pos]
        self._stats["shard_dispatches"] += 1
        self._fan_out(chunk, "get", values)
        return True

    async def _dispatch_gets(self, ops: List[Tuple]) -> None:
        tel = self._telemetry
        tracer = tel.tracer if tel is not None else None
        for chunk in self._chunks(ops):
            self._note_batch("get", len(chunk))
            if tracer is None:
                await self._dispatch_get_chunk(chunk)
            else:
                with tracer.span("serve.dispatch", kind="get", n=len(chunk)):
                    await self._dispatch_get_chunk(chunk)

    async def _dispatch_get_chunk(self, chunk: List[Tuple]) -> None:
        """Answer one get chunk: scalar, sharded, batch, or fallback path."""
        engine = self.engine
        if len(chunk) == 1:
            (key, default, _fut, _t0), = chunk
            try:
                value = await self._run(engine.get, key, default)
            except Exception as exc:
                self._reject(chunk[0], "get", exc)
            else:
                self._resolve(chunk[0], "get", value)
            return
        if self._shard_dispatch and await self._dispatch_gets_sharded(chunk):
            return
        try:
            q = np.asarray([op[0] for op in chunk], dtype=np.float64)
            results = await self._run(engine.get_batch, q, _MISS)
        except Exception:
            self._stats["scalar_fallbacks"] += 1
            outcomes = await self._run(
                _each, engine.get, [(op[0], op[1]) for op in chunk]
            )
            for op, (ok, res) in zip(chunk, outcomes):
                (self._resolve if ok else self._reject)(op, "get", res)
            return
        if results.dtype == object:
            defaults = [
                op[1] if value is _MISS else value
                for op, value in zip(chunk, results)
            ]
            self._fan_out(chunk, "get", defaults)
        else:
            self._fan_out(chunk, "get", results)

    async def _dispatch_ranges(self, ops: List[Tuple]) -> None:
        engine = self.engine
        for chunk in self._chunks(ops):
            self._note_batch("range", len(chunk))
            try:
                if len(chunk) == 1:
                    (lo, hi, _fut, _t0), = chunk
                    results = [await self._run(engine.range_arrays, lo, hi)]
                else:
                    bounds = np.asarray(
                        [[op[0], op[1]] for op in chunk], dtype=np.float64
                    )
                    results = await self._run(engine.range_batch, bounds)
            except Exception:
                self._stats["scalar_fallbacks"] += 1
                outcomes = await self._run(
                    _each, engine.range_arrays, [(op[0], op[1]) for op in chunk]
                )
                for op, (ok, res) in zip(chunk, outcomes):
                    (self._resolve if ok else self._reject)(op, "range", res)
                continue
            self._fan_out(chunk, "range", results)

    async def _dispatch_inserts(self, ops: List[Tuple]) -> None:
        engine = self.engine
        for chunk in self._chunks(ops):
            self._note_batch("insert", len(chunk))
            keys = [op[0] for op in chunk]
            values = [op[1] for op in chunk]
            n_none = sum(1 for v in values if v is None)
            pre = getattr(engine, "version", None)
            exc: Optional[BaseException] = None
            try:
                if len(chunk) == 1:
                    await self._run(engine.insert, keys[0], values[0])
                elif 0 < n_none < len(values):
                    # Mixed auto-rowid and explicit payloads cannot go
                    # through one insert_batch call without changing what
                    # the engine would store; apply per item instead.
                    raise _MixedBatch()
                elif n_none == len(values):
                    await self._run(
                        engine.insert_batch,
                        np.asarray(keys, dtype=np.float64),
                    )
                else:
                    await self._run(
                        engine.insert_batch,
                        np.asarray(keys, dtype=np.float64),
                        values,
                    )
            except Exception as caught:
                exc = caught
            if exc is None:
                self._fan_out(chunk, "insert", [None] * len(chunk))
            elif pre is None or getattr(engine, "version", None) == pre:
                # The engine provably applied nothing (version unchanged):
                # safe to retry per item so one bad request cannot poison
                # its batch-mates.
                self._stats["scalar_fallbacks"] += 1
                outcomes = await self._run(
                    _each, engine.insert, list(zip(keys, values))
                )
                for op, (ok, res) in zip(chunk, outcomes):
                    if ok:
                        self._resolve(op, "insert", None)
                    else:
                        self._reject(op, "insert", res)
            else:
                # Partial application is possible; failing the whole chunk
                # is the only answer that cannot double-insert.
                for op in chunk:
                    self._reject(op, "insert", exc)
            version = getattr(engine, "version", None)
            if version is not None:
                self._stats["barrier_version"] = version

    async def _dispatch_deletes(self, ops: List[Tuple]) -> None:
        """Dispatch a delete run through ``engine.delete_batch``.

        Misses reject only their own future (with the engine's
        ``KeyNotFoundError``), so one absent key cannot poison its
        batch-mates; a whole-batch failure falls back per key only when
        the engine's version stamp proves nothing was applied, exactly
        like the insert path.
        """
        engine = self.engine
        for chunk in self._chunks(ops):
            self._note_batch("delete", len(chunk))
            keys = [op[0] for op in chunk]
            if len(chunk) == 1:
                # Already per-request isolated: dispatch the scalar verb
                # and reject this one future on any failure.
                try:
                    value = await self._run(engine.delete, keys[0])
                except Exception as exc:
                    self._reject(chunk[0], "delete", exc)
                else:
                    self._resolve(chunk[0], "delete", value)
                version = getattr(engine, "version", None)
                if version is not None:
                    self._stats["barrier_version"] = version
                continue
            pre = getattr(engine, "version", None)
            exc: Optional[BaseException] = None
            results = None
            try:
                results = await self._run(
                    partial(
                        engine.delete_batch,
                        np.asarray(keys, dtype=np.float64),
                        missing="ignore",
                        default=_MISS,
                    )
                )
            except Exception as caught:
                exc = caught
            if exc is None:
                for op, value in zip(chunk, results):
                    if value is _MISS:
                        self._reject(op, "delete", KeyNotFoundError(op[0]))
                    else:
                        self._resolve(op, "delete", value)
            elif pre is None or getattr(engine, "version", None) == pre:
                # Nothing applied: safe to retry per key in isolation.
                self._stats["scalar_fallbacks"] += 1
                outcomes = await self._run(
                    _each, engine.delete, [(k,) for k in keys]
                )
                for op, (ok, res) in zip(chunk, outcomes):
                    (self._resolve if ok else self._reject)(op, "delete", res)
            else:
                # Partial application is possible; failing the whole chunk
                # is the only answer that cannot double-delete.
                for op in chunk:
                    self._reject(op, "delete", exc)
            version = getattr(engine, "version", None)
            if version is not None:
                self._stats["barrier_version"] = version


class _MixedBatch(Exception):
    """Internal: route a mixed None/explicit-value insert chunk to the
    per-item path (never escapes :meth:`RequestBatcher._dispatch_inserts`)."""
