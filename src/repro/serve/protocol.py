"""Deprecated location of the engine protocols (moved to ``repro.api``).

The structural engine contracts outgrew the serving layer: they now define
what *every* backend implements, not just what the server consumes, so
they live in :mod:`repro.api.protocol` alongside the factory that
constructs backends against them. This module re-exports
:class:`~repro.api.protocol.BatchEngine`,
:class:`~repro.api.protocol.EngineProtocol` and
:class:`~repro.api.protocol.ShardDispatchEngine` for one release and
warns on import — update imports to ``repro.api`` (or the re-exports on
the top-level ``repro`` package).
"""

from __future__ import annotations

import warnings

from repro.api.protocol import (  # noqa: F401
    BatchEngine,
    EngineProtocol,
    ShardDispatchEngine,
)

__all__ = ["BatchEngine", "EngineProtocol", "ShardDispatchEngine"]

warnings.warn(
    "repro.serve.protocol has moved to repro.api.protocol; this "
    "compatibility shim will be removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
