"""The engine protocol: what the serving layer requires of a backend.

The server and batcher are engine-agnostic by construction — they dispatch
structurally on the verbs below, which is why the in-process
:class:`~repro.engine.ShardedEngine` and the multi-process
:class:`~repro.cluster.ClusterEngine` serve through the identical
front-end. :class:`BatchEngine` writes that contract down as a
``typing.Protocol`` so it is checkable (``isinstance`` at runtime, any
structural type checker statically) instead of folklore.

Two optional extensions are feature-detected rather than required:

* ``warm()`` — pre-build read snapshots (``Server.warm`` no-ops without);
* per-shard dispatch — ``shard_dispatch_safe`` / ``route_shards`` /
  ``get_batch_shard`` (:class:`ShardDispatchEngine`), which lets the
  batcher answer each shard's sub-batch as an independent task; engines
  that cannot take concurrent per-shard calls simply leave
  ``shard_dispatch_safe`` False/absent.
"""

from __future__ import annotations

from typing import Any, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

__all__ = ["BatchEngine", "ShardDispatchEngine"]


@runtime_checkable
class BatchEngine(Protocol):
    """Structural interface the :class:`~repro.serve.Server` dispatches on.

    Scalar verbs serve the per-request fallback paths; batch verbs serve
    the micro-batched hot path; ``version`` is the monotonic mutation
    stamp the read-your-writes barrier records.
    """

    def get(self, key: Any, default: Any = None) -> Any:
        """Scalar point lookup returning the value or ``default``."""
        ...

    def insert(self, key: float, value: Any = None) -> None:
        """Scalar insert of ``key -> value``."""
        ...

    def range_arrays(
        self,
        lo: Optional[float] = None,
        hi: Optional[float] = None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One range scan as ``(keys, values)`` arrays."""
        ...

    def get_batch(self, queries, default: Any = None) -> np.ndarray:
        """Vectorized point lookups, one slot per query in request order.

        Parameters
        ----------
        queries:
            Key batch (float64-coercible); ``default`` fills miss slots.

        Returns
        -------
        numpy.ndarray
            One value per query.
        """
        ...

    def range_batch(
        self, bounds, include_lo: bool = True, include_hi: bool = True
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """One ``(keys, values)`` pair per ``[lo, hi]`` bounds row.

        Parameters
        ----------
        bounds:
            ``(n, 2)`` array of inclusive key bounds.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            Matching rows per bounds row, in key order.
        """
        ...

    def insert_batch(self, keys, values=None) -> None:
        """Bulk insert; returns once every key is applied (the fence).

        Parameters
        ----------
        keys:
            Keys to insert; ``values`` are aligned payloads (``None`` =
            engine-assigned row ids).
        """
        ...

    @property
    def version(self) -> int:
        """Monotonic engine-wide mutation stamp (the flush barrier)."""
        ...


@runtime_checkable
class ShardDispatchEngine(BatchEngine, Protocol):
    """A :class:`BatchEngine` whose shards answer reads independently.

    ``shard_dispatch_safe`` being True asserts that concurrent
    ``get_batch_shard`` calls for *different* shards are safe (each shard
    has its own state/transport) — the property that lets
    :class:`~repro.serve.batcher.RequestBatcher` overlap shards in time.
    """

    #: Whether concurrent per-shard reads are safe (see class docstring).
    shard_dispatch_safe: bool

    def route_shards(self, queries) -> np.ndarray:
        """Owning shard id per query key."""
        ...

    def get_batch_shard(self, sid: int, queries, default: Any = None) -> np.ndarray:
        """Answer one shard's sub-batch (all queries must route to ``sid``).

        Parameters
        ----------
        sid:
            Shard id; ``queries`` is that shard's key sub-batch and
            ``default`` fills miss slots.

        Returns
        -------
        numpy.ndarray
            One value per query, as :meth:`BatchEngine.get_batch` would
            fill those slots.
        """
        ...
