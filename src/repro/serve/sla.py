"""SLA-driven batching: adapt ``RequestBatcher.max_delay`` from live p99.

The batcher's ``max_delay`` is the classic throughput/latency dial: a
longer timer collects bigger batches (amortizing per-op dispatch cost),
a shorter one bounds how long a lone request waits for company. Its right
setting depends on the offered load — which changes. This controller
closes the loop: the serve layer already timestamps every request
end-to-end, so the controller windows those latencies, reads the p99, and
steers ``max_delay`` toward a configured target:

* **p99 above target** — multiplicative decrease, additionally clamped to
  half the target outright (when the p99 is blown, the batching delay
  itself is usually the dominant term, so converge in one step instead of
  bleeding for several windows).
* **p99 comfortably under target** (below ``slack`` of it) — gentle
  multiplicative-plus-additive increase back toward ``ceiling``, so
  throughput is not permanently sacrificed to one historic load spike.
* **in between** — hold.

The controller runs as one asyncio task ticking every ``interval``
seconds; ticks with fewer than ``min_samples`` fresh latencies hold (no
decision on noise). :meth:`SlaController.tick` is public so tests can
drive adaptation deterministically without real sleeps.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.errors import InvalidParameterError

__all__ = ["SlaController"]


class SlaController:
    """Feedback controller steering a batcher's ``max_delay`` to a p99 SLA.

    Parameters
    ----------
    batcher:
        The :class:`~repro.serve.batcher.RequestBatcher` whose
        ``max_delay`` attribute is steered.
    target_p99_us:
        The latency objective: keep windowed p99 at or under this many
        microseconds.
    interval:
        Seconds between control decisions.
    min_samples:
        Fresh latencies a window needs before a decision is made.
    floor, ceiling:
        Bounds (seconds) that ``max_delay`` never leaves.
    decrease, increase:
        Multiplicative step factors for the two directions.
    slack:
        Fraction of the target below which the controller starts growing
        ``max_delay`` again (hysteresis band: between ``slack * target``
        and ``target`` it holds).
    """

    def __init__(
        self,
        batcher: Any,
        target_p99_us: float,
        *,
        interval: float = 0.05,
        min_samples: int = 16,
        floor: float = 0.0,
        ceiling: float = 0.05,
        decrease: float = 0.5,
        increase: float = 1.25,
        slack: float = 0.5,
    ) -> None:
        if target_p99_us <= 0:
            raise InvalidParameterError(
                f"sla target must be > 0 us, got {target_p99_us}"
            )
        if interval <= 0:
            raise InvalidParameterError(
                f"sla interval must be > 0 s, got {interval}"
            )
        self._batcher = batcher
        self.target_p99_us = float(target_p99_us)
        self.interval = float(interval)
        self.min_samples = int(min_samples)
        self.floor = float(floor)
        self.ceiling = float(max(ceiling, batcher.max_delay))
        self.decrease = float(decrease)
        self.increase = float(increase)
        self.slack = float(slack)
        self._window: List[float] = []
        self._task: Optional[asyncio.Task] = None
        self.ticks = 0
        self.decreases = 0
        self.increases = 0
        self.last_p99_us = 0.0

    # -- sampling ------------------------------------------------------

    def observe(self, latencies) -> None:
        """Feed one dispatch fan-out's end-to-end latencies (seconds)."""
        self._window.extend(latencies)
        if len(self._window) > 250_000:  # bound memory under huge bursts
            del self._window[: len(self._window) - 250_000]

    # -- control -------------------------------------------------------

    def tick(self) -> Optional[str]:
        """One control decision over the samples since the previous tick.

        Returns
        -------
        str or None
            ``"decrease"`` / ``"increase"`` / ``"hold"``, or ``None`` when
            the window was too small to decide.
        """
        self.ticks += 1
        if len(self._window) < self.min_samples:
            return None
        p99_us = float(
            np.percentile(np.asarray(self._window, dtype=np.float64), 99.0)
            * 1e6
        )
        self._window.clear()
        self.last_p99_us = p99_us
        delay = float(self._batcher.max_delay)
        if p99_us > self.target_p99_us:
            target_s = self.target_p99_us * 1e-6
            new = max(self.floor, min(delay * self.decrease, 0.5 * target_s))
            if new < delay:
                self._batcher.max_delay = new
                self.decreases += 1
                return "decrease"
            return "hold"
        if p99_us < self.slack * self.target_p99_us:
            new = min(self.ceiling, delay * self.increase + 1e-5)
            if new > delay:
                self._batcher.max_delay = new
                self.increases += 1
                return "increase"
        return "hold"

    async def _run(self) -> None:
        while True:
            await asyncio.sleep(self.interval)
            self.tick()

    def start(self) -> None:
        """Start the periodic control task on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(self._run())

    def stop(self) -> None:
        """Cancel the control task (idempotent; safe without one running)."""
        if self._task is not None:
            self._task.cancel()
            self._task = None

    # -- inspection ----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Controller state for ``Server.stats()['sla']``.

        Returns
        -------
        dict
            Target, the batcher's current (adapted) ``max_delay``, the
            last windowed p99, and tick/step counters.
        """
        return {
            "target_p99_us": self.target_p99_us,
            "max_delay": float(self._batcher.max_delay),
            "last_p99_us": round(self.last_p99_us, 2),
            "ticks": self.ticks,
            "decreases": self.decreases,
            "increases": self.increases,
            "window_pending": len(self._window),
            "running": self._task is not None and not self._task.done(),
        }
