"""The asyncio serving facade: admission control + batching + stats.

:class:`Server` is what application code talks to. Each ``await
server.get(key)`` looks like a scalar request, but behind the facade a
:class:`~repro.serve.batcher.RequestBatcher` coalesces all concurrent
requests into micro-batches for the engine's vectorized verbs — the
difference between ~10us-per-op scalar Python descents and ~1us-per-op
NumPy batch passes (``python -m repro.bench serve`` measures it).

On top of the batcher the server adds:

* **backpressure** — ``max_pending`` bounds the number of in-flight
  requests; extra arrivals either wait (default) or are rejected with
  :class:`~repro.serve.errors.ServerOverloadedError`;
* **per-op latency/throughput stats** — end-to-end latency percentiles per
  operation kind, see :meth:`Server.stats`;
* **lifecycle** — ``async with Server(engine) as s:`` or an explicit
  :meth:`close`, which drains pending requests (in-flight work completes,
  new submissions raise :class:`~repro.serve.errors.ServerClosedError`);
* **executor escape hatch** — ``executor="thread"`` moves every engine
  dispatch onto a dedicated single worker thread so a large page merge or
  combined-view rebuild cannot stall the event loop.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.api.protocol import BatchEngine
from repro.core.errors import InvalidParameterError
from repro.obs import Telemetry
from repro.obs.export import snapshot as _obs_snapshot
from repro.serve.batcher import RequestBatcher
from repro.serve.errors import ServerClosedError, ServerOverloadedError
from repro.serve.sla import SlaController
from repro.serve.stats import LatencySeries

__all__ = ["Server"]


class Server:
    """Async front-end over a batch engine (see module doc).

    Parameters
    ----------
    engine:
        The index being served — anything satisfying the
        :class:`~repro.api.protocol.BatchEngine` protocol: a
        :class:`~repro.engine.ShardedEngine`, a multi-process
        :class:`~repro.cluster.ClusterEngine`, or any object with the
        same scalar + batch verbs.
    max_batch, max_delay, eager_flush:
        Batching knobs, passed to
        :class:`~repro.serve.batcher.RequestBatcher`; ``max_batch=1``
        degenerates to per-request scalar dispatch.
    max_pending:
        Backpressure bound on concurrently admitted requests (``None`` =
        unbounded).
    overload:
        What a full queue does to a new request: ``"wait"`` (default)
        suspends the caller until capacity frees, ``"reject"`` raises
        :class:`ServerOverloadedError` immediately.
    executor:
        ``None`` (dispatch inline on the event loop), ``"thread"`` (the
        server owns a single worker thread and shuts it down on close), or
        a caller-supplied single-worker ``concurrent.futures.Executor``.
    shard_concurrency:
        When > 0 and the engine supports safe per-shard dispatch
        (``shard_dispatch_safe``, e.g. a
        :class:`~repro.cluster.ClusterEngine` whose shards live in
        separate processes), the server owns a thread pool of this many
        workers and the batcher answers each get flush's shards as
        concurrent tasks under the same fence — shard sub-batches overlap
        in time. ``0`` (default) keeps whole-batch dispatch. Engines
        without shard dispatch ignore the setting.
    latency_window:
        Samples retained per operation kind for the percentile stats;
        ``0`` disables server-side latency sampling entirely (the
        per-request clock reads disappear from the hot path — useful when
        the traffic driver measures latency client-side, as the serve
        benchmark does). Telemetry re-enables the observer: its latency
        histograms need the per-request timestamps.
    telemetry:
        ``None``/``"off"`` (default), ``"metrics"``, ``"full"``, or a
        :class:`repro.obs.Telemetry` instance. When left ``None`` the
        server adopts the engine's own ``telemetry`` bundle (if any), so
        ``open_server(..., telemetry="full")`` yields one shared registry
        across both layers. Enables per-op latency histograms
        (``repro_serve_latency_us``), summary/batcher registry callbacks,
        and — in ``"full"`` mode — the batcher's flush/dispatch spans
        plus the slow-op log.
    admin_port:
        When set (requires telemetry), ``async with`` starts a live
        :class:`repro.obs.http.AdminServer` on this port (``0`` = pick a
        free one, readable from ``server.admin.port``) exposing
        ``/metrics``, ``/stats``, ``/slow`` and ``/workload``; it is
        shut down by :meth:`close`.
    admin_host:
        Bind address for the admin endpoint (default loopback).
    sla_target_p99_us:
        When set, an :class:`~repro.serve.sla.SlaController` adapts the
        batcher's ``max_delay`` online so the windowed end-to-end p99
        tracks this target (microseconds). The control task starts with
        ``async with`` (or :meth:`start_sla`) and stops on :meth:`close`;
        the adapted state is reported under ``stats()["sla"]``.
    sla_interval:
        Seconds between SLA control decisions (default 50ms).
    """

    def __init__(
        self,
        engine: BatchEngine,
        *,
        max_batch: int = 1024,
        max_delay: float = 0.002,
        eager_flush: bool = True,
        max_pending: Optional[int] = None,
        overload: str = "wait",
        executor: Any = None,
        shard_concurrency: int = 0,
        latency_window: int = 100_000,
        telemetry: Any = None,
        admin_port: Optional[int] = None,
        admin_host: str = "127.0.0.1",
        sla_target_p99_us: Optional[float] = None,
        sla_interval: float = 0.05,
    ) -> None:
        if overload not in ("wait", "reject"):
            raise InvalidParameterError(
                f"overload must be 'wait' or 'reject', got {overload!r}"
            )
        if max_pending is not None and max_pending < 1:
            raise InvalidParameterError(
                f"max_pending must be >= 1 or None, got {max_pending}"
            )
        self.engine = engine
        self._owns_executor = False
        if executor == "thread":
            executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="repro-serve"
            )
            self._owns_executor = True
        elif executor is not None and not isinstance(executor, Executor):
            raise InvalidParameterError(
                "executor must be None, 'thread', or a concurrent.futures "
                f"Executor, got {executor!r}"
            )
        self._executor = executor
        if shard_concurrency < 0:
            raise InvalidParameterError(
                f"shard_concurrency must be >= 0, got {shard_concurrency}"
            )
        self._shard_executor: Optional[Executor] = None
        if shard_concurrency > 0:
            self._shard_executor = ThreadPoolExecutor(
                max_workers=shard_concurrency,
                thread_name_prefix="repro-serve-shard",
            )
        if telemetry is None:
            # Adopt the engine's bundle so open_server() shares one
            # registry across the serve and engine layers.
            telemetry = getattr(engine, "telemetry", None)
        self.telemetry = Telemetry.from_mode(telemetry)
        self._latency: Dict[str, LatencySeries] = {
            kind: LatencySeries(max(latency_window, 1))
            for kind in ("get", "range", "insert", "delete")
        }
        self._obs_hist: Optional[Dict[str, Any]] = None
        if self.telemetry is not None:
            hist = self.telemetry.registry.histogram(
                "repro_serve_latency_us",
                help="End-to-end request latency per op kind (microseconds).",
                labels=("op",),
            )
            self._obs_hist = {kind: hist.labels(kind) for kind in self._latency}
            self.telemetry.registry.register_callback(
                "repro_serve_latency_summary_us",
                self._collect_latency,
                help="Windowed latency percentiles per op kind.",
                labels=("op", "stat"),
            )
        self._batcher = RequestBatcher(
            engine,
            max_batch=max_batch,
            max_delay=max_delay,
            eager_flush=eager_flush,
            executor=executor,
            shard_executor=self._shard_executor,
            observer=(
                self._observe
                if latency_window > 0
                or self.telemetry is not None
                or sla_target_p99_us is not None
                else None
            ),
            telemetry=self.telemetry,
        )
        self._sla: Optional[SlaController] = None
        if sla_target_p99_us is not None:
            self._sla = SlaController(
                self._batcher, sla_target_p99_us, interval=sla_interval
            )
        #: Callable returning the network tier's counters, set by a
        #: :class:`repro.net.server.NetServer` riding on this server;
        #: surfaces as ``stats()["net"]``.
        self.net_stats_provider: Optional[Any] = None
        if admin_port is not None and self.telemetry is None:
            raise InvalidParameterError(
                "admin_port requires telemetry (the endpoint serves the "
                "telemetry bundle's registry)"
            )
        self._admin_port = admin_port
        self._admin_host = admin_host
        #: The running admin endpoint (after ``__aenter__``), or ``None``.
        self.admin: Any = None
        self._max_pending = max_pending
        self._overload = overload
        # Created lazily on first bounded admission: on Python 3.9 an
        # asyncio.Semaphore built outside a running loop binds the wrong
        # loop.
        self._sem: Optional[asyncio.Semaphore] = None
        self._in_flight = 0
        self._rejected = 0
        self._closed = False
        self._t_start = time.perf_counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    async def close(self) -> None:
        """Drain pending requests and stop accepting new ones.

        Idempotent. Requests already admitted complete normally (their
        futures resolve during the drain); submissions after this call
        raise :class:`ServerClosedError`. An owned ``"thread"`` executor
        is shut down once the drain finishes.
        """
        if self._closed:
            return
        self._closed = True
        if self._sla is not None:
            self._sla.stop()
        if self.admin is not None:
            await self.admin.close()
            self.admin = None
        await self._batcher.drain()
        if self._owns_executor:
            self._executor.shutdown(wait=True)
        if self._shard_executor is not None:
            self._shard_executor.shutdown(wait=True)

    async def __aenter__(self) -> "Server":
        await self.start_admin()
        self.start_sla()
        return self

    def start_sla(self) -> None:
        """Start the SLA control task if a target was configured.

        Idempotent; called automatically by ``async with`` (and by the
        TCP adapter's ``start()``). Requires a running event loop.
        """
        if self._sla is not None:
            self._sla.start()

    async def start_admin(self) -> Optional[Any]:
        """Start the admin endpoint if ``admin_port`` was configured.

        Idempotent; called automatically by ``async with``. Useful
        directly when the server is managed without the context manager.

        Returns
        -------
        AdminServer or None
            The running endpoint, or ``None`` when no ``admin_port`` was
            configured.
        """
        if self._admin_port is None or self.admin is not None:
            return self.admin
        from repro.obs.http import AdminServer

        self.admin = await AdminServer(
            self.telemetry,
            server=self,
            host=self._admin_host,
            port=self._admin_port,
        ).start()
        return self.admin

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Admission control
    # ------------------------------------------------------------------

    async def _acquire(self) -> None:
        # Slow path, taken only when admission is bounded (max_pending);
        # the unbounded fast path is inlined in each operation to keep
        # per-request overhead down.
        if self._overload == "reject":
            if self._in_flight >= self._max_pending:  # type: ignore[operator]
                self._rejected += 1
                raise ServerOverloadedError(
                    f"{self._in_flight} requests in flight >= "
                    f"max_pending={self._max_pending}"
                )
        else:
            if self._sem is None:
                self._sem = asyncio.Semaphore(self._max_pending)
            await self._sem.acquire()
            if self._closed:  # closed while we were queued
                self._sem.release()
                raise ServerClosedError("server is closed")

    def _release(self) -> None:
        self._in_flight -= 1
        if self._sem is not None:
            self._sem.release()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def get(self, key: Any, default: Any = None) -> Any:
        """Point lookup: awaitable of the value under ``key`` (or
        ``default``).

        Results are identical to scalar ``engine.get(key, default)`` — the
        batch dispatch is an execution strategy, not a semantic change.
        Unbounded servers hand back the batcher's future directly (one
        less coroutine frame on the hot path); bounded ones go through the
        admission coroutine. Either way: ``value = await server.get(key)``.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        if self._max_pending is None:
            return self._batcher.submit_get(key, default)
        return self._bounded(self._batcher.submit_get, key, default)

    def range(self, lo: float, hi: float) -> Any:
        """Range scan: awaitable of the ``(keys, values)`` arrays with
        ``lo <= key <= hi``."""
        if self._closed:
            raise ServerClosedError("server is closed")
        if self._max_pending is None:
            return self._batcher.submit_range(lo, hi)
        return self._bounded(self._batcher.submit_range, lo, hi)

    def insert(self, key: float, value: Any = None) -> Any:
        """Insert ``key -> value``: awaitable resolving once the write is
        applied (auto row id when ``value`` is None on an auto-rowid
        engine).

        A subsequent ``get``/``range`` touching this key is guaranteed to
        observe the write (read-your-writes, enforced by the batcher's
        insert fence)."""
        if self._closed:
            raise ServerClosedError("server is closed")
        if self._max_pending is None:
            return self._batcher.submit_insert(key, value)
        return self._bounded(self._batcher.submit_insert, key, value)

    def delete(self, key: float) -> Any:
        """Delete one occurrence of ``key``: awaitable of its value.

        Coalesced through the batcher's ``delete_batch`` dispatch under
        the same read-your-writes fence as inserts: a subsequent
        ``get``/``range`` touching this key is guaranteed not to observe
        the removed occurrence. An absent key rejects only this caller's
        awaitable with :class:`~repro.core.errors.KeyNotFoundError`."""
        if self._closed:
            raise ServerClosedError("server is closed")
        if self._max_pending is None:
            return self._batcher.submit_delete(key)
        return self._bounded(self._batcher.submit_delete, key)

    async def _bounded(self, submit: Any, *args: Any) -> Any:
        """Admission-controlled submission (only built when ``max_pending``
        is set)."""
        await self._acquire()
        self._in_flight += 1
        try:
            return await submit(*args)
        finally:
            self._release()

    # ------------------------------------------------------------------
    # Batch verbs (pre-assembled batches, dispatched whole)
    # ------------------------------------------------------------------
    #
    # These exist for callers that already hold a whole batch — the TCP
    # tier's batch frames, the router's scatter legs — where coalescing
    # through the scalar submit path would only deconstruct and rebuild
    # it. They dispatch through the batcher's executor (so an
    # ``executor="thread"`` server keeps its loop responsive) but do NOT
    # pass the read-your-writes fence: a batch verb is ordered against
    # scalar traffic only by its own await — submit it after the writes
    # it must observe have resolved.

    async def get_batch(self, queries, default: Any = None):
        """Vectorized point lookups for a pre-assembled query batch.

        Parameters
        ----------
        queries:
            Array-like of keys to look up.
        default:
            Value reported for absent keys.

        Returns
        -------
        numpy.ndarray
            One value (or ``default``) per query, in query order —
            identical to ``engine.get_batch(queries, default)``.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        return await self._batcher.offload(
            self.engine.get_batch, queries, default
        )

    async def range_batch(self, bounds):
        """Batched range scans over ``[lo, hi]`` bound rows.

        Parameters
        ----------
        bounds:
            Array-like of shape ``(n, 2)``: inclusive ``[lo, hi]`` rows.

        Returns
        -------
        list of (numpy.ndarray, numpy.ndarray)
            One ``(keys, values)`` pair per row, as the engine returns.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        return await self._batcher.offload(self.engine.range_batch, bounds)

    async def insert_batch(self, keys, values=None) -> None:
        """Bulk insert of a pre-assembled key (and optional value) batch.

        Parameters
        ----------
        keys:
            Array-like of keys to insert.
        values:
            Optional payloads aligned with ``keys`` (``None`` = auto row
            ids).
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        return await self._batcher.offload(
            self.engine.insert_batch, keys, values
        )

    async def delete_batch(self, keys):
        """Bulk delete of a pre-assembled key batch (``missing="raise"``).

        Parameters
        ----------
        keys:
            Array-like of keys to delete (one occurrence each).

        Returns
        -------
        numpy.ndarray
            The deleted values, in key order.
        """
        if self._closed:
            raise ServerClosedError("server is closed")
        return await self._batcher.offload(self.engine.delete_batch, keys)

    async def warm(self) -> None:
        """Pre-build the engine's read-path snapshots before taking traffic.

        Delegates to ``engine.warm()`` (a no-op for engines without one)
        through the dispatch executor, so with ``executor="thread"`` the
        event loop stays responsive while the flat views are assembled.
        """
        fn = getattr(self.engine, "warm", None)
        if fn is not None:
            await self._batcher.offload(fn)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------

    def _observe(self, kind: str, latencies) -> None:
        self._latency[kind].extend(latencies)
        if self._sla is not None:
            self._sla.observe(latencies)
        if self._obs_hist is not None:
            self._obs_hist[kind].observe_many(
                np.asarray(latencies, dtype=np.float64) * 1e6
            )

    def _collect_latency(self) -> Dict[Tuple[str, str], float]:
        """Flatten the per-kind latency summaries for the metrics callback."""
        out: Dict[Tuple[str, str], float] = {}
        for kind, series in self._latency.items():
            for stat, value in series.summary().items():
                out[(kind, stat)] = float(value)
        return out

    def stats(self) -> Dict[str, Any]:
        """Serving-layer statistics.

        Returns
        -------
        dict
            ``uptime_seconds``, completed request counts and end-to-end
            latency percentiles per kind (``latency``), overall
            ``throughput_ops_per_s``, admission counters (``in_flight``
            counts bounded-admission requests; unbounded servers track
            queue depth as ``batcher.pending``), ``rejected``, the
            batcher's dispatch counters (``batcher``: flushes, flush
            reasons, batch sizes, fallbacks, barrier holds), the engine's
            current ``engine_version`` stamp when the engine exposes one,
            the engine's own unified ``stats()`` dict under ``engine``
            (``None`` for engines without one), and — when telemetry is
            enabled — a registry snapshot under ``telemetry`` (``None``
            when off). When an SLA target is configured the controller's
            state appears under ``sla``; when a TCP adapter rides on this
            server its counters appear under ``net`` (both ``None``
            otherwise).
        """
        uptime = time.perf_counter() - self._t_start
        # Batcher op counters cover every request even when latency
        # sampling is disabled (latency_window=0).
        completed = sum(self._batcher.stats()["ops"].values())
        engine_stats = None
        stats_fn = getattr(self.engine, "stats", None)
        if stats_fn is not None:
            try:
                engine_stats = stats_fn()
            except Exception as exc:  # e.g. a ClusterEngine already closed
                engine_stats = {"error": repr(exc)}
        telemetry_stats = None
        tel = self.telemetry
        if tel is not None:
            telemetry_stats = _obs_snapshot(tel.registry)
            telemetry_stats["mode"] = tel.mode
            if tel.tracer is not None:
                telemetry_stats["trace"] = {
                    "capacity": tel.tracer.capacity,
                    "dropped": tel.tracer.dropped,
                    "buffered": len(tel.tracer.spans()),
                }
        return {
            "uptime_seconds": round(uptime, 3),
            "completed": completed,
            "throughput_ops_per_s": round(completed / uptime, 1) if uptime else 0.0,
            "in_flight": self._in_flight,
            "rejected": self._rejected,
            "max_pending": self._max_pending,
            "overload": self._overload,
            "latency": {k: s.summary() for k, s in self._latency.items()},
            "batcher": self._batcher.stats(),
            "engine_version": getattr(self.engine, "version", None),
            "engine": engine_stats,
            "telemetry": telemetry_stats,
            "sla": None if self._sla is None else self._sla.stats(),
            "net": (
                None
                if self.net_stats_provider is None
                else self.net_stats_provider()
            ),
        }
