"""Async serving: micro-batching concurrent clients over the engine.

Demonstrates layer 3 of the stack (`repro.serve`): a `Server` wraps a
`ShardedEngine`, and concurrent `await server.get(...)` calls from many
clients are coalesced into vectorized micro-batches — each client keeps
its one-key-at-a-time API while the engine sees the batch workloads it is
fast at. The scenario:

1. build a 500k-key engine and serve 64 closed-loop clients, naive
   (per-request scalar dispatch) vs batched, printing the throughput gap;
2. mix writers and readers to show read-your-writes ordering across the
   insert fence;
3. bound the queue (`max_pending`) and show backpressure rejecting
   arrivals past capacity.

Run:  python examples/async_server.py
"""

import asyncio

import numpy as np

from repro import open_engine
from repro.serve import Server, ServerOverloadedError
from repro.workloads import run_closed_loop, uniform_lookups


def build():
    rng = np.random.default_rng(7)
    keys = np.sort(rng.uniform(0, 1e9, 500_000))
    engine = open_engine(keys, n_shards=4, error=512.0, buffer_capacity=256)
    return engine, keys


async def throughput_demo(engine, keys):
    queries = uniform_lookups(keys, 30_000, seed=1)
    print("64 closed-loop clients, 30k lookups:")
    rates = {}
    for label, max_batch, max_delay in (
        ("naive per-request", 1, 0.0),
        ("micro-batched", 1024, 0.001),
    ):
        async with Server(engine, max_batch=max_batch, max_delay=max_delay) as srv:
            await srv.warm()
            res = await run_closed_loop(srv, queries, concurrency=64)
        rates[label] = res.ops_per_second
        print(
            f"  {label:18s} {res.ops_per_second:10,.0f} ops/s   "
            f"p50 {res.percentile_us(50):7.0f} us   "
            f"p99 {res.percentile_us(99):7.0f} us"
        )
    print(f"  -> batching buys {rates['micro-batched'] / rates['naive per-request']:.1f}x\n")


async def read_your_writes_demo(engine):
    print("read-your-writes across the write fence:")
    async with Server(engine) as srv:
        # Writer and reader race on the same key inside one flush cycle;
        # the reader is barriered behind the insert and sees the write.
        write = asyncio.ensure_future(srv.insert(3.14159, "pi-row"))
        read = asyncio.ensure_future(srv.get(3.14159))
        await asyncio.gather(write, read)
        held = srv.stats()["batcher"]["barrier_held"]
        print(f"  reader saw {read.result()!r} (reads held at fence: {held})")
        # Deletes ride the same fence: the racing reader misses cleanly.
        gone, after = await asyncio.gather(
            srv.delete(3.14159), srv.get(3.14159, "MISS")
        )
        print(f"  delete returned {gone!r}; racing reader saw {after!r}\n")


async def backpressure_demo(engine, keys):
    print("backpressure (max_pending=32, overload='reject'):")
    srv = Server(
        engine, max_pending=32, overload="reject",
        eager_flush=False, max_delay=0.05,
    )
    admitted = [
        asyncio.ensure_future(srv.get(k)) for k in keys[:32]
    ]
    await asyncio.sleep(0)  # let the 32 requests occupy the queue
    rejected = 0
    for k in keys[32:40]:
        try:
            await srv.get(k)
        except ServerOverloadedError:
            rejected += 1
    await srv.close()  # drains the admitted 32
    results = await asyncio.gather(*admitted, return_exceptions=True)
    done = sum(1 for r in results if not isinstance(r, Exception))
    print(f"  admitted {done}, rejected {rejected} past capacity\n")


async def main():
    engine, keys = build()
    await throughput_demo(engine, keys)
    await read_your_writes_demo(engine)
    await backpressure_demo(engine, keys)
    print("server stats keys:", ", ".join(Server(engine).stats().keys()))


if __name__ == "__main__":
    asyncio.run(main())
