"""Quickstart: build a FITing-Tree, look things up, insert, measure.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    BinarySearchIndex,
    FITingTree,
    FixedPageIndex,
    FullIndex,
    LatencyModel,
)
from repro.workloads import run_lookups, uniform_lookups


def main() -> None:
    # 1M sorted keys (timestamps, sensor readings, ...). The FITing-Tree
    # requires sorted input for bulk loading, like any clustered index.
    rng = np.random.default_rng(7)
    keys = np.sort(rng.uniform(0, 1e9, 1_000_000))

    # The tunable error knob: lookups probe at most an error-bounded window.
    index = FITingTree(keys, error=256)
    print(f"built: {index}")
    print(f"  segments          : {index.n_segments:,} (vs {len(keys):,} keys)")
    print(f"  index size        : {index.model_bytes() / 1024:.1f} KB")

    # Point lookups return the payload; with no values given, payloads are
    # row ids (positions at build time).
    probe = keys[123_456]
    print(f"  get({probe:.3f})  -> row {index.get(probe)}")
    print(f"  missing key       -> {index.get(-1.0, 'not found')}")

    # Range scan: sequential within and across segments.
    lo, hi = keys[1000], keys[1020]
    rows = [row for _, row in index.range_items(lo, hi)]
    print(f"  range[{lo:.0f}, {hi:.0f}] -> rows {rows[0]}..{rows[-1]}")

    # Inserts are buffered per segment; a full buffer triggers a local
    # merge + re-segmentation (never a global rebuild).
    index.insert(123.456)
    print(f"  after insert      : n={len(index):,}, still valid:", end=" ")
    index.validate()
    print("yes")

    # Size comparison against the paper's baselines.
    print("\nindex size comparison (same data, same B+ tree substrate):")
    full = FullIndex(keys)
    fixed = FixedPageIndex(keys, page_size=256, buffer_capacity=0)
    binary = BinarySearchIndex(keys)
    read_only = FITingTree(keys, error=256, buffer_capacity=0)
    for name, idx in [
        ("FITingTree(error=256)", read_only),
        ("FixedPageIndex(page=256)", fixed),
        ("FullIndex (dense)", full),
        ("BinarySearchIndex", binary),
    ]:
        print(f"  {name:26s} {idx.model_bytes() / 1024:10.1f} KB")

    # Simulated lookup latency (random accesses priced by a cache model —
    # see DESIGN.md for why wall-clock ns are not comparable in CPython).
    queries = uniform_lookups(keys, 10_000, seed=1)
    model = LatencyModel()
    print("\nmodeled lookup latency (10k random hits):")
    for name, idx in [
        ("FITingTree", read_only),
        ("FixedPageIndex", fixed),
        ("FullIndex", full),
        ("BinarySearch", binary),
    ]:
        res = run_lookups(idx, queries, latency_model=model, use_bulk=True)
        print(
            f"  {name:26s} {res.modeled_ns_per_op:8.1f} ns/lookup "
            f"({res.hits}/{res.ops} hits)"
        )


if __name__ == "__main__":
    main()
