"""Secondary (non-clustered) index over map-feature longitudes.

The table stores map features in insertion order; queries filter on the
longitude column, which is unsorted and contains duplicates. A
SecondaryFITingTree materializes the sorted key-page level (as any
secondary index must) but compresses the tree above it with error-bounded
segments (paper Section 2.2.1, Figure 3).

Run:  python examples/maps_secondary_index.py
"""

import numpy as np

from repro import FullIndex, SecondaryFITingTree
from repro.datasets import maps_longitude


def main() -> None:
    rng = np.random.default_rng(5)
    n = 300_000

    # The "table": features with a longitude column in arrival order.
    longitudes = maps_longitude(n, seed=5)[rng.permutation(n)]
    names = np.array([f"feature-{i}" for i in range(n)])

    index = SecondaryFITingTree(longitudes, error=128)
    print(f"indexed {n:,} features: {index.n_segments:,} segments, "
          f"tree+segments {index.model_bytes() / 1024:.1f} KB, "
          f"key pages {index.key_pages_bytes() / 1024 / 1024:.1f} MB "
          f"(the level every secondary index pays)")

    dense = FullIndex(np.sort(longitudes))
    print(f"dense secondary tree would be "
          f"{dense.model_bytes() / 1024 / 1024:.1f} MB on top of key pages "
          f"({dense.model_bytes() / index.model_bytes():.0f}x larger)")

    # --- Point query: exact longitude match ----------------------------
    target = float(longitudes[777])
    rows = index.lookup(target)
    print(f"\nfeatures at longitude {target:.6f}: rows {rows}")
    for row in rows[:3]:
        print(f"  {names[row]}")

    # --- Band query: a longitude slice (e.g. one time zone) ------------
    lo, hi = 5.0, 7.5
    in_band = list(index.range_rowids(lo, hi))
    check = int(np.sum((longitudes >= lo) & (longitudes <= hi)))
    print(f"\nfeatures with longitude in [{lo}, {hi}]: {len(in_band):,} "
          f"(verified against numpy: {check:,})")
    print("row ids stream back in longitude order; fetching the rows is "
          "random access into the table, as for any secondary index")

    # --- Maintenance: new features arrive ------------------------------
    new_lon, new_row = 6.283185, n
    index.insert(new_lon, new_row)
    assert new_row in index.lookup(new_lon)
    removed = index.delete(new_lon)
    print(f"\ninsert + delete of feature at {new_lon} round-trips "
          f"(row {removed})")
    index.validate()


if __name__ == "__main__":
    main()
