"""Persistence: build once, save, reload, keep serving (library extension).

Bulk loading segments the whole attribute; for a production index you do
that once and persist the result. ``save_index``/``load_index`` round-trip
the full state — segments, slopes, insert buffers, row-id counter — through
a single compressed .npz file.

Run:  python examples/persistence.py
"""

import os
import tempfile
import time

from repro import FITingTree, load_index, save_index
from repro.datasets import weblogs


def main() -> None:
    keys = weblogs(500_000, seed=11)

    t0 = time.perf_counter()
    index = FITingTree(keys, error=128)
    build_s = time.perf_counter() - t0
    print(f"built: {index.n_segments:,} segments over {len(keys):,} keys "
          f"in {build_s:.2f}s")

    # Buffer a few live inserts so the save captures in-flight state too.
    for i in range(100):
        index.insert(keys[-1] + 1.0 + i, 10_000_000 + i)

    path = os.path.join(tempfile.gettempdir(), "weblogs_fiting.npz")
    t0 = time.perf_counter()
    save_index(index, path)
    save_s = time.perf_counter() - t0
    size_mb = os.path.getsize(path) / 1024 / 1024
    print(f"saved to {path}: {size_mb:.1f} MB in {save_s:.2f}s "
          f"(data + index + buffers, compressed)")

    t0 = time.perf_counter()
    loaded = load_index(path)
    load_s = time.perf_counter() - t0
    print(f"loaded in {load_s:.2f}s (vs {build_s:.2f}s to re-segment): "
          f"{loaded.n_segments:,} segments, n={len(loaded):,}")

    # The reloaded index serves reads and writes immediately.
    assert loaded.get(keys[123_456]) == 123_456
    assert loaded.get(keys[-1] + 1.0) == 10_000_000  # buffered insert survived
    loaded.insert(keys[-1] + 500.0)
    loaded.validate()
    print("reloaded index verified: lookups, buffered inserts and the "
          "row-id counter all survived the round trip")
    os.unlink(path)


if __name__ == "__main__":
    main()
