"""Sharded batch serving: amortize index traversal across query batches.

A single FITing-Tree answers one key at a time — a Python-level B+ tree
descent plus a bounded window search per query. The ShardedEngine is the
serving layer above it: the key space is range-partitioned into shards (one
FITing-Tree each), and whole query batches are answered through flattened
NumPy views of the segments — one searchsorted routing pass, vectorized
interpolation, and a vectorized bounded window probe.

Run:  python examples/sharded_engine.py
"""

import time

import numpy as np

from repro import FITingTree, open_engine
from repro.workloads import run_batch_lookups, uniform_lookups


def main() -> None:
    # A building's worth of IoT events: 1M sorted timestamps.
    rng = np.random.default_rng(42)
    keys = np.sort(rng.uniform(0, 3.15e7, 1_000_000))

    engine = open_engine(keys, n_shards=4, error=256)
    print(f"engine: {engine}")
    for i, shard in enumerate(engine.shards):
        print(f"  shard {i}: n={len(shard):,}, segments={shard.n_segments:,}")

    # A serving tier sees batches, not single keys: answer 100k point
    # lookups in batches of 1024 and compare with the per-key loop.
    queries = uniform_lookups(keys, 100_000, seed=1)
    result = run_batch_lookups(engine, queries, batch_size=1024)
    print(f"\nbatched lookups : {result.ops_per_second:,.0f} ops/s "
          f"({result.wall_ns_per_op:,.0f} ns/op, hits={result.hits:,})")

    tree = FITingTree(keys, error=256)
    sample = queries[:10_000]
    start = time.perf_counter()
    for q in sample:
        tree.get(q)
    scalar_ns = (time.perf_counter() - start) * 1e9 / len(sample)
    print(f"scalar loop     : {1e9 / scalar_ns:,.0f} ops/s "
          f"({scalar_ns:,.0f} ns/op)")
    print(f"speedup         : {scalar_ns / result.wall_ns_per_op:.1f}x")

    # Batched range scans: each bound resolves to one contiguous slice per
    # overlapped shard.
    los = rng.uniform(0, 3.1e7, 1_000)
    bounds = np.stack([los, los + 3_000.0], axis=1)
    start = time.perf_counter()
    scans = engine.range_batch(bounds)
    elapsed = time.perf_counter() - start
    scanned = sum(len(k) for k, _ in scans)
    print(f"\nrange_batch     : {len(bounds):,} scans, {scanned:,} tuples "
          f"in {elapsed * 1e3:.1f} ms")

    # Batched writes: grouped per shard, applied in key order; only the
    # written shards' flattened views rebuild on the next read.
    inserts = rng.uniform(0, 3.15e7, 50_000)
    start = time.perf_counter()
    engine.insert_batch(inserts)
    elapsed = time.perf_counter() - start
    print(f"insert_batch    : {len(inserts):,} inserts in {elapsed:.2f} s")

    stats = engine.stats()
    print(f"\nengine stats    : n={stats['n']:,}, pages={stats['n_pages']:,}, "
          f"buffered={stats['buffered_elements']:,}")
    print(f"view cache      : {stats['view_builds']} builds, "
          f"{stats['view_hits']} hits "
          f"(hit rate {stats['view_hit_rate']:.2f})")
    engine.validate()
    print("validate        : ok")


if __name__ == "__main__":
    main()
