"""IoT smart-building scenario (the paper's motivating example, Figure 1).

A university building generates sensor events (door openings, motion,
power) whose timestamps follow human activity: busy weekdays, silent
nights, quiet weekends. The key-to-position function is a staircase that a
FITing-Tree compresses dramatically — long linear night stretches become
single segments.

Run:  python examples/iot_smart_building.py
"""

import numpy as np

from repro import FITingTree, FullIndex
from repro.datasets import iot

HOUR = 3600.0
DAY = 24 * HOUR


def main() -> None:
    # 90 days of events from ~100 sensors (synthetic substitute for the
    # paper's IoT dataset; see repro.datasets.temporal).
    events = iot(500_000, seed=42, days=90)
    print(f"{len(events):,} sensor events over {events[-1] / DAY:.0f} days")

    index = FITingTree(events, error=100)
    full = FullIndex(events)
    print(f"FITing-Tree: {index.n_segments:,} segments, "
          f"{index.model_bytes() / 1024:.1f} KB")
    print(f"Dense index: {full.n_entries:,} entries, "
          f"{full.model_bytes() / 1024 / 1024:.1f} MB "
          f"({full.model_bytes() / index.model_bytes():.0f}x larger)")

    # --- Operational queries -------------------------------------------
    # "How many events during working hours on day 10?"
    day = 10
    start = day * DAY + 8 * HOUR
    end = day * DAY + 19 * HOUR
    working = sum(1 for _ in index.range_items(start, end))
    overnight = sum(
        1 for _ in index.range_items(day * DAY + 0 * HOUR, day * DAY + 6 * HOUR)
    )
    print(f"\nday {day}: {working:,} events 08:00-19:00, "
          f"{overnight:,} events 00:00-06:00")

    # "Which rows correspond to the first events after an alarm time?"
    alarm = day * DAY + 3 * HOUR + 17 * 60
    after = [(t, row) for (t, row), _ in zip(index.range_items(lo=alarm), range(3))]
    print(f"first events after {alarm / HOUR % 24:.2f}h:")
    for t, row in after:
        print(f"  t={t / HOUR % 24:6.3f}h  row={row}")

    # --- Data-awareness ------------------------------------------------
    # Segment lengths adapt to activity: night/weekend stretches compress
    # into long segments, busy hours need finer ones.
    lengths = [page.n_data for page in index.pages()]
    print(f"\nsegment lengths: min={min(lengths)}, "
          f"median={int(np.median(lengths))}, max={max(lengths)} "
          f"(adaptivity is the whole point: fixed pages would all be equal)")

    # New events stream in: appends go to segment buffers.
    t = float(events[-1])
    for i in range(5_000):
        t += float(np.random.default_rng(i).exponential(2.0))
        index.insert(t)
    index.validate()
    print(f"after streaming 5,000 live events: n={len(index):,}, "
          f"segments={index.n_segments:,} (still consistent)")


if __name__ == "__main__":
    main()
