"""Multi-process serving: an async Server over a ClusterEngine.

The whole stack in one file: build a FITing-Tree-backed engine, promote it
to one worker process per range shard (``ClusterEngine.from_engine``), and
serve concurrent async clients through the micro-batching front-end — with
``shard_concurrency`` set so each flush's shard sub-batches are answered
by different processes *at the same time*.

Run: ``PYTHONPATH=src python examples/cluster_server.py``
"""

import asyncio
import time

import numpy as np

from repro import open_engine
from repro.serve import Server

N_KEYS = 200_000
N_SHARDS = 4
N_CLIENTS = 64
REQUESTS_PER_CLIENT = 200


async def client(server, queries):
    hits = 0
    for q in queries:
        if await server.get(float(q)) is not None:
            hits += 1
    return hits


async def main():
    keys = np.sort(np.random.default_rng(0).uniform(0, 1e9, N_KEYS))
    # One declarative call: build + snapshot + one worker per shard.
    # (To promote an already-live in-process engine instead, use
    # ClusterEngine.from_engine(engine).)
    engine = open_engine(keys, executor="cluster", n_shards=N_SHARDS,
                         error=128, buffer_capacity=32)
    print(f"built {N_SHARDS}-worker cluster over {N_KEYS:,} keys")
    try:
        stats = engine.stats()
        print("workers:", [w["pid"] for w in stats["workers"]])

        rng = np.random.default_rng(1)
        streams = [
            keys[rng.integers(0, N_KEYS, REQUESTS_PER_CLIENT)]
            for _ in range(N_CLIENTS)
        ]
        async with Server(engine, shard_concurrency=N_SHARDS) as server:
            await server.warm()

            # Writes are fenced: the insert is applied in its owning
            # worker before the await resolves, so this read — possibly
            # batched with reads served by other processes — sees it.
            await server.insert(123.456, 999)
            assert await server.get(123.456) == 999

            start = time.perf_counter()
            hits = await asyncio.gather(
                *[client(server, s) for s in streams]
            )
            elapsed = time.perf_counter() - start

            total = N_CLIENTS * REQUESTS_PER_CLIENT
            batcher = server.stats()["batcher"]
            print(f"{total:,} requests in {elapsed:.2f}s "
                  f"({total / elapsed:,.0f} ops/s), all hits: "
                  f"{sum(hits) == total}")
            print(f"get batches: {batcher['batches']['get']}, "
                  f"largest: {batcher['max_batch_observed']}, "
                  f"per-shard dispatches: {batcher['shard_dispatches']}")
    finally:
        engine.close()
    print("workers joined; shared memory released")


if __name__ == "__main__":
    asyncio.run(main())
