"""Network tier tour: a TCP backend fleet behind a key-range router.

The whole wire stack in one file: spawn two server processes each owning
half the key space (``TcpCluster``), fan requests across them with a
client-side ``Router`` (same cuts geometry the engine shards with),
survive a SIGKILLed backend (ejection -> typed error -> restart ->
re-admission), and let the SLA controller fix a deliberately terrible
batching delay.

Run: ``PYTHONPATH=src python examples/tcp_cluster.py``
"""

import asyncio
import time

import numpy as np

from repro.net import AsyncNetClient, BackendDownError, TcpCluster, serve_tcp

N_KEYS = 100_000


async def tour(fleet):
    async with fleet.router(health_interval=0.1) as router:
        pong = await router.ping()
        print("backends:", fleet.addresses, "pids:", pong["pids"])

        # Point and batch verbs route by key range, transparently.
        keys = fleet.keys
        assert await router.get(float(keys[10])) == 10
        probe = np.random.default_rng(1).permutation(keys)[:4096]
        start = time.perf_counter()
        values = await router.get_batch(probe)
        elapsed = time.perf_counter() - start
        print(f"routed get_batch[{probe.size}] in {elapsed * 1e3:.1f}ms "
              f"({probe.size / elapsed:,.0f} keys/s over real sockets)")
        assert np.array_equal(values, np.searchsorted(keys, probe))

        # Ranges straddling the cut stitch results from both backends.
        lo, hi = float(keys[100]), float(keys[-100])
        rk, _ = await router.range(lo, hi)
        print(f"range across the cut: {len(rk):,} rows from "
              f"{router.stats()['scatter_legs']} scatter legs")

        # Failure model: SIGKILL one backend, watch the router eject it,
        # then restart and watch the health loop re-admit it.
        fleet.kill(1)
        try:
            await router.get(float(keys[-10]))  # owned by the dead half
        except BackendDownError as exc:
            print(f"backend {exc.backend} down -> typed error, ejected")
        assert await router.get(float(keys[10])) == 10  # other half fine
        fleet.restart(1)
        while not all(await router.check_health()):
            await asyncio.sleep(0.05)
        assert await router.get(float(keys[-10])) is not None
        s = router.stats()
        print("backend restarted and re-admitted; counters:",
              {k: s[k] for k in ("requests", "scatter_legs",
                                 "ejections", "readmissions")})


async def sla_demo(keys):
    # A server misconfigured with a 50ms batch delay; the controller
    # adapts max_delay until the windowed p99 is under the 5ms target.
    net = await serve_tcp(keys, eager_flush=False, max_delay=0.05,
                          sla_target_p99_us=5_000.0, sla_interval=0.05)
    client = AsyncNetClient(*net.address)
    await client.connect()
    try:
        for _ in range(20):
            await asyncio.gather(
                *[client.get(float(k)) for k in keys[:64]]
            )
        sla = net.server.stats()["sla"]
        print(f"SLA controller: max_delay 50ms -> "
              f"{sla['max_delay'] * 1e6:.0f}us "
              f"(p99 {sla['last_p99_us']:,.0f}us, target "
              f"{sla['target_p99_us']:,.0f}us)")
    finally:
        await client.close()
        await net.close()


def main():
    keys = np.sort(np.random.default_rng(0).uniform(0, 1e9, N_KEYS))
    values = np.arange(N_KEYS, dtype=np.int64)
    with TcpCluster(keys, values, backends=2, n_shards=2) as fleet:
        fleet.keys = keys  # handed to the tour for query sampling
        asyncio.run(tour(fleet))
    print("fleet stopped; sockets closed")
    asyncio.run(sla_demo(keys))


if __name__ == "__main__":
    main()
