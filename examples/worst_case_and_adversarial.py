"""Failure-mode tour: the worst-case step data and the A.3 adversarial input.

Two constructions from the paper's analysis sections:

* Section 7.2's step data — every key repeated 100 times. Below the step
  size the FITing-Tree degenerates to the Theorem 3.1 worst case (one
  segment per error+1 slots); at the step size its size collapses to a
  single segment (Figure 9b's cliff).
* Appendix A.3's construction — input on which the greedy ShrinkingCone
  produces N+2 segments while an optimal segmentation needs O(1): greedy
  is provably not competitive, and you can watch it happen.

Run:  python examples/worst_case_and_adversarial.py
"""

from repro import FITingTree, optimal_segment_count, shrinking_cone
from repro.datasets import adversarial_keys, step_data


def step_cliff() -> None:
    print("=== worst case: step data (step size 100) ===")
    keys = step_data(200_000, step=100)
    print(f"{len(keys):,} elements, {len(set(keys)):,} distinct keys")
    print("error  segments     index_KB")
    for error in (10, 25, 50, 99, 150, 1000):
        index = FITingTree(keys, error=error, buffer_capacity=0)
        print(f"{error:5d}  {index.n_segments:8,}  {index.model_bytes() / 1024:10.2f}")
    print("-> the cliff at error >= 99: one segment suffices once the\n"
          "   error can absorb a whole duplicate run (paper Figure 9b)\n")


def adversarial() -> None:
    print("=== A.3: greedy is not competitive ===")
    error = 100
    print("N_patterns  greedy  optimal  ratio")
    for n_patterns in (10, 100, 1_000):
        keys = adversarial_keys(n_patterns, error)
        greedy = len(shrinking_cone(keys, error))
        optimal = optimal_segment_count(keys, error)
        print(f"{n_patterns:10,}  {greedy:6,}  {optimal:7,}  {greedy / optimal:5.0f}x")
    print("-> greedy pays one segment per repeated-key cliff (exactly N+2);\n"
          "   the optimal threads a single line through every cliff.\n"
          "   This is the price of O(n) one-pass bulk loading - on real\n"
          "   data Table 1 shows the gap is small (ratios 1.0-1.6).")


def main() -> None:
    step_cliff()
    adversarial()


if __name__ == "__main__":
    main()
