"""DBA cost-model workflow (paper Section 6): pick the error from an SLA.

Two scenarios on a web-request log:
  1. a lookup-latency SLA ("p50 under 900ns") -> smallest index meeting it;
  2. a storage budget ("the index gets 64KB") -> fastest index fitting it.

The chosen configuration is then built and checked against the simulated
latency (access counts priced at the same c as the model).

Run:  python examples/weblog_sla_tuning.py
"""

from repro import CostModel, CostModelParams, FITingTree, LatencyModel
from repro.datasets import weblogs
from repro.workloads import run_lookups, uniform_lookups

C_NS = 50.0  # measured cost of a random access on the paper's hardware
CANDIDATES = (16, 32, 64, 128, 256, 512, 1024, 4096, 16384)


def build_and_measure(keys, error):
    index = FITingTree(keys, error=error, buffer_capacity=int(error) // 2)
    res = run_lookups(
        index,
        uniform_lookups(keys, 5_000, seed=1),
        latency_model=LatencyModel(c=C_NS),
    )
    return index, res.modeled_ns_per_op


def main() -> None:
    keys = weblogs(400_000, seed=3)
    print(f"{len(keys):,} web requests; learning S_e by segmenting...")
    model = CostModel.learned(keys, params=CostModelParams(c_ns=C_NS))

    # --- Scenario 1: latency SLA ---------------------------------------
    sla_ns = 900.0
    error = model.pick_error_for_latency(sla_ns, candidates=CANDIDATES)
    index, actual = build_and_measure(keys, error)
    print(f"\nSLA {sla_ns:.0f}ns -> error={error}")
    print(f"  estimated latency : {model.lookup_latency_ns(error):8.1f} ns")
    print(f"  simulated latency : {actual:8.1f} ns "
          f"({'meets' if actual <= sla_ns else 'VIOLATES'} the SLA)")
    print(f"  index size        : {index.model_bytes() / 1024:8.1f} KB")

    # --- Scenario 2: storage budget ------------------------------------
    budget = 64 * 1024
    error = model.pick_error_for_size(budget, candidates=CANDIDATES)
    index, actual = build_and_measure(keys, error)
    print(f"\nbudget {budget / 1024:.0f}KB -> error={error}")
    print(f"  estimated size    : {model.size_bytes(error) / 1024:8.1f} KB")
    print(f"  actual size       : {index.model_bytes() / 1024:8.1f} KB "
          f"({'fits' if index.model_bytes() <= budget else 'OVERFLOWS'})")
    print(f"  simulated latency : {actual:8.1f} ns")

    # --- The whole trade-off curve --------------------------------------
    print("\nerror  est_ns  sim_ns  est_KB  act_KB")
    for error in CANDIDATES:
        index, actual = build_and_measure(keys, error)
        print(
            f"{error:5d}  {model.lookup_latency_ns(error):6.0f}"
            f"  {actual:6.0f}"
            f"  {model.size_bytes(error) / 1024:6.1f}"
            f"  {index.model_bytes() / 1024:6.1f}"
        )
    print("\n(estimates are deliberately pessimistic: the model prices every"
          "\n probe as a cache miss, as in the paper's Figure 10)")


if __name__ == "__main__":
    main()
