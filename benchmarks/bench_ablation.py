"""Ablations: cone accept test, tree fanout, and B+ tree substrate speed."""

from repro.bench import run_experiment
from repro.btree import BPlusTree


class TestBTreeSubstrate:
    def test_btree_bulk_load(self, benchmark, weblogs_keys):
        pairs = [(float(k), i) for i, k in enumerate(weblogs_keys[:50_000])]

        def run():
            tree = BPlusTree(branching=16)
            tree.bulk_load(pairs)
            return tree

        tree = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(tree) == 50_000

    def test_btree_point_gets(self, benchmark, weblogs_keys):
        tree = BPlusTree(branching=16)
        tree.bulk_load([(float(k), i) for i, k in enumerate(weblogs_keys[:50_000])])
        probes = [float(k) for k in weblogs_keys[:2_000]]

        def run():
            get = tree.get
            return sum(get(k) is not None for k in probes)

        assert benchmark(run) == 2_000


class TestConeAblation:
    def test_abl_cone(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("abl_cone",),
            kwargs=dict(n=60_000, errors=(10, 100)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for row in result.rows:
            assert row["exact_test"] <= row["paper_test"]


class TestSearchAblation:
    def test_abl_search(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("abl_search",),
            kwargs=dict(n=100_000, errors=(8, 512)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        probes = {
            (r["error"], r["search"]): r["probes_per_lookup"]
            for r in result.rows
        }
        # Paper 4.1.2: linear beats binary at tiny errors...
        assert probes[(8, "linear")] < probes[(8, "binary")]
        # ...and loses badly at large ones.
        assert probes[(512, "linear")] > 5 * probes[(512, "binary")]
        # Exponential stays within ~2x of binary everywhere.
        for error in (8, 512):
            assert probes[(error, "exponential")] <= 2 * probes[(error, "binary")]


class TestCacheSimAblation:
    def test_abl_cachesim(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("abl_cachesim",),
            kwargs=dict(n=150_000, n_queries=1_500),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        # At the finest paging, the fixed index's tree overflows the cache
        # while the FITing tree's stays (nearly) resident: the mechanism
        # behind Figure 6's fixed-index latency spike.
        first = result.rows[0]
        assert first["fixed_tree_kb"] > 2 * first["fiting_tree_kb"]
        assert first["fixed_miss_ratio"] > first["fiting_miss_ratio"]
        for row in result.rows:
            assert row["fiting_miss_ratio"] <= row["fixed_miss_ratio"] + 1e-9


class TestBranchingAblation:
    def test_abl_branching(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("abl_branching",),
            kwargs=dict(n=100_000, error=16),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        heights = [r["height"] for r in result.rows]
        assert heights == sorted(heights, reverse=True)
