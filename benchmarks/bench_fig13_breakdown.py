"""Figure 13 (A.1): lookup-cost breakdown — tree search vs page search."""

from repro.bench import run_experiment


class TestFig13Harness:
    def test_fig13_breakdown(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig13",),
            kwargs=dict(n=100_000, n_queries=3_000,
                        grid=(10, 100, 1_000, 10_000)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for structure in ("fiting", "fixed"):
            rows = [r for r in result.rows if r["structure"] == structure]
            # Page-search share grows monotonically with the error/page
            # size (paper A.1's stacked bars tilting right).
            shares = [r["pct_page"] for r in rows]
            assert shares == sorted(shares)
        # At every grid point the FITing-Tree spends no larger a share in
        # the tree than fixed paging does (its tree is smaller).
        fit = [r for r in result.rows if r["structure"] == "fiting"]
        fix = [r for r in result.rows if r["structure"] == "fixed"]
        assert sum(
            1 for a, b in zip(fit, fix) if a["pct_tree"] <= b["pct_tree"] + 1e-9
        ) >= len(fit) - 1
