"""Figure 11: lookup-latency scalability with dataset size."""

from repro.bench import run_experiment


class TestFig11Harness:
    def test_fig11_scaling(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig11",),
            kwargs=dict(n=20_000, n_queries=2_000,
                        scale_factors=(1, 2, 4, 8, 16)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        # Binary search is the slowest structure at every non-toy scale
        # (the paper's log2(n) vs log_b(n) argument).
        for row in result.rows[1:]:
            slowest_tree = max(row["fiting_ns"], row["fixed_ns"], row["full_ns"])
            assert row["binary_ns"] >= slowest_tree
        # FITing tracks the full index within a small factor at every scale
        # while staying far smaller (the paper's scale-factor-32 point:
        # the full index outgrows memory, the FITing-Tree does not).
        for row in result.rows:
            assert row["fiting_ns"] <= 6 * row["full_ns"]
            assert row["fiting_kb"] * 10 < row["full_kb"]
