"""Shared fixtures for the benchmark suite.

Sizes are chosen so the full ``pytest benchmarks/ --benchmark-only`` run
finishes in a few minutes of CPython time while still exercising every
experiment's shape. EXPERIMENTS.md records a larger harness run
(``python -m repro.bench all``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import get
from repro.workloads import uniform_lookups

BENCH_N = 100_000


@pytest.fixture(scope="session")
def weblogs_keys():
    return get("weblogs", n=BENCH_N, seed=0)


@pytest.fixture(scope="session")
def iot_keys():
    return get("iot", n=BENCH_N, seed=0)


@pytest.fixture(scope="session")
def maps_keys():
    return get("maps", n=BENCH_N, seed=0)


@pytest.fixture(scope="session")
def weblogs_queries(weblogs_keys):
    return uniform_lookups(weblogs_keys, 10_000, seed=1)
