"""Appendix A.3: ShrinkingCone's non-competitiveness on the constructed
input, plus segmentation speed on that input."""

from repro.bench import run_experiment
from repro.core.segmentation import shrinking_cone
from repro.datasets import adversarial_keys


class TestAdversarialSpeed:
    def test_segmentation_speed(self, benchmark):
        keys = adversarial_keys(500, error=100)
        segs = benchmark(shrinking_cone, keys, 100)
        assert len(segs) == 502


class TestA3Harness:
    def test_a3_ratio_growth(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("a3",),
            kwargs=dict(pattern_counts=(10, 100, 1_000)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for row in result.rows:
            assert row["greedy"] == row["patterns_N"] + 2  # exact paper count
            assert row["optimal"] <= 2
        ratios = [row["ratio"] for row in result.rows]
        assert ratios == sorted(ratios)
        assert ratios[-1] > 100  # arbitrarily bad, growing with N
