"""Figure 12 (A.2): insert throughput vs per-segment buffer size."""

from repro.bench import run_experiment


class TestFig12Harness:
    def test_fig12_buffer_knob(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig12",),
            kwargs=dict(n=60_000, n_inserts=6_000, error=20_000,
                        buffers=(10, 100, 1_000, 10_000)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        rows = result.rows
        splits = [r["splits"] for r in rows]
        # Larger buffers -> strictly fewer merge/re-segmentation events.
        assert splits == sorted(splits, reverse=True)
        # The paper's A.2 claim: bigger buffers buy write throughput; the
        # 10 -> 1000 step must show a clear win (wall clock, relative).
        assert rows[2]["minserts_per_s"] > 2 * rows[0]["minserts_per_s"]
