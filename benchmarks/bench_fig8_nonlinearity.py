"""Figure 8: non-linearity ratio per dataset over the error-scale grid."""

from repro.analysis import nonlinearity_ratio
from repro.bench import run_experiment


class TestNonlinearitySpeed:
    def test_single_ratio(self, benchmark, iot_keys):
        ratio = benchmark(nonlinearity_ratio, iot_keys, 100)
        assert 0 < ratio <= 1.5


class TestFig8Harness:
    def test_fig8_profiles(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig8",),
            kwargs=dict(n=100_000, datasets=("weblogs", "iot", "maps")),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        profiles = {
            name: {r["error"]: r[name] for r in result.rows if r[name] != ""}
            for name in ("weblogs", "iot", "maps")
        }
        # IoT: one pronounced bump, well above its own baseline.
        iot = profiles["iot"]
        assert max(iot.values()) > 2.5 * min(iot.values())
        # Maps: comparatively linear at small scales (paper's observation).
        small = [v for e, v in profiles["maps"].items() if e <= 100]
        assert sum(small) / len(small) < 0.3
