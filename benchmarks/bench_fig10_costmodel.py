"""Figure 10: cost-model accuracy — estimates vs access-counted actuals."""

from repro.bench import run_experiment
from repro.core.cost_model import CostModel, CostModelParams


class TestCostModelSpeed:
    def test_learned_model_queries(self, benchmark, weblogs_keys):
        model = CostModel.learned(
            weblogs_keys, params=CostModelParams(c_ns=50.0)
        )
        model.lookup_latency_ns(256)  # warm the memo

        def run():
            return (
                model.lookup_latency_ns(256),
                model.size_bytes(256),
                model.insert_latency_ns(256),
            )

        lat, size, ins = benchmark(run)
        assert lat > 0 and size > 0 and ins > 0

    def test_selector_over_grid(self, benchmark, weblogs_keys):
        model = CostModel.learned(weblogs_keys)
        chosen = benchmark(
            model.pick_error_for_size, 256 * 1024, (16, 64, 256, 1024, 4096)
        )
        assert chosen in (16, 64, 256, 1024, 4096)


class TestFig10Harness:
    def test_fig10_accuracy(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig10",),
            kwargs=dict(n=100_000, n_queries=5_000),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for row in result.rows:
            # Paper Fig 10b: size estimate is pessimistic yet accurate.
            assert 1.0 <= row["size_est/act"] <= 4.0
            # Paper Fig 10a: latency estimate upper-bounds the actual.
            assert row["lat_est/act"] >= 1.0
