"""Table 1: segmentation micro-benchmarks + the greedy-vs-optimal table.

Regenerates the paper's Table 1 rows (ShrinkingCone vs Optimal segment
counts and their ratio) and times the algorithms themselves.
"""

import pytest

from repro.bench import run_experiment
from repro.core.optimal import optimal_segment_count
from repro.core.segmentation import shrinking_cone, shrinking_cone_reference


class TestSegmentationSpeed:
    def test_shrinking_cone_vectorized(self, benchmark, weblogs_keys):
        segs = benchmark(shrinking_cone, weblogs_keys, 100)
        assert len(segs) > 10

    def test_shrinking_cone_reference(self, benchmark, weblogs_keys):
        keys = weblogs_keys[:10_000]
        segs = benchmark(shrinking_cone_reference, keys, 100)
        assert len(segs) >= 1

    def test_shrinking_cone_small_error(self, benchmark, weblogs_keys):
        segs = benchmark(shrinking_cone, weblogs_keys, 10)
        assert len(segs) > 100

    def test_optimal_free_slope(self, benchmark, weblogs_keys):
        keys = weblogs_keys[:20_000]
        count = benchmark(optimal_segment_count, keys, 100)
        assert count >= 1


class TestTable1Harness:
    def test_table1_rows(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("table1",),
            kwargs=dict(
                n=20_000,
                endpoint_n=4_000,
                errors=(10, 100),
                datasets=("weblogs", "iot", "taxi_drop_lat", "osm_lon"),
            ),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for row in result.rows:
            # Paper's Table 1 shape: greedy close to optimal, never below.
            assert 1.0 <= row["ratio"] < 5.0
            assert row["greedy@sample"] >= row["opt_endpt@sample"]
