"""Figure 7: insert throughput vs error threshold."""

import numpy as np
import pytest

from repro.baselines import FixedPageIndex, FullIndex
from repro.bench import run_experiment
from repro.core.fiting_tree import FITingTree
from repro.workloads import insert_stream


@pytest.fixture()
def stream(weblogs_keys):
    return insert_stream(
        5_000, float(weblogs_keys[0]), float(weblogs_keys[-1]), seed=2
    )


class TestInsertSpeed:
    def test_fiting_inserts(self, benchmark, weblogs_keys, stream):
        def run():
            index = FITingTree(weblogs_keys, error=256, buffer_capacity=128)
            for k in stream:
                index.insert(k)
            return index

        index = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(index) == len(weblogs_keys) + len(stream)

    def test_fixed_inserts(self, benchmark, weblogs_keys, stream):
        def run():
            index = FixedPageIndex(weblogs_keys, page_size=256, buffer_capacity=128)
            for k in stream:
                index.insert(k)
            return index

        index = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(index) == len(weblogs_keys) + len(stream)

    def test_full_inserts(self, benchmark, weblogs_keys, stream):
        def run():
            index = FullIndex(weblogs_keys)
            for k in stream:
                index.insert(k)
            return index

        index = benchmark.pedantic(run, rounds=3, iterations=1)
        assert len(index) == len(weblogs_keys) + len(stream)


class TestFig7Harness:
    def test_fig7_shape(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig7",),
            kwargs=dict(n=40_000, n_inserts=4_000, errors=(16, 64, 256)),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for dataset in ("weblogs", "iot", "maps"):
            rows = [r for r in result.rows if r["dataset"] == dataset]
            by = lambda s, e: next(
                r for r in rows if r["structure"] == s and r["error"] == e
            )
            for error in (16, 64, 256):
                # The paper's stated full-index advantage: it never splits.
                assert by("full", error)["splits"] == 0
                assert by("full", error)["moves_per_insert"] == 0
                # FITing ~ fixed (comparable insert cost, paper Fig 7).
                fit = by("fiting", error)["modeled_ns"]
                fix = by("fixed", error)["modeled_ns"]
                assert fit <= 2.5 * fix and fix <= 2.5 * fit
            # Buffers do fill and trigger re-segmentation somewhere in the
            # sweep (at tiny errors inserts may spread too thin to fill any
            # single segment's buffer — that is workload-dependent).
            assert any(
                by("fiting", e)["splits"] > 0 for e in (16, 64, 256)
            ), f"{dataset}: no fiting split in the whole sweep"
