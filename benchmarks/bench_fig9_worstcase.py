"""Figure 9: worst-case step data — build speed and the size cliff."""

from repro.bench import run_experiment
from repro.core.fiting_tree import FITingTree
from repro.datasets import step_data


class TestWorstCaseBuild:
    def test_build_below_step(self, benchmark):
        keys = step_data(100_000, step=100)
        index = benchmark(
            lambda: FITingTree(keys, error=50, buffer_capacity=0)
        )
        assert index.n_segments > 1_000

    def test_build_above_step(self, benchmark):
        keys = step_data(100_000, step=100)
        index = benchmark(
            lambda: FITingTree(keys, error=150, buffer_capacity=0)
        )
        assert index.n_segments == 1


class TestFig9Harness:
    def test_fig9_cliff(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig9",),
            kwargs=dict(n=100_000, step=100),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        by_error = {r["error"]: r for r in result.rows}
        # Below the step: fiting tracks fixed within a small factor, far
        # below full (paper: "same as a fixed-sized index but still smaller
        # than a full index").
        low = by_error[50]
        assert low["fiting_kb"] < 5 * low["fixed_kb"]
        assert low["fiting_kb"] < low["full_kb"]
        # At/above the step: single segment, orders of magnitude collapse.
        assert by_error[150]["fiting_segments"] == 1
        assert by_error[50]["fiting_kb"] > 50 * by_error[150]["fiting_kb"]
