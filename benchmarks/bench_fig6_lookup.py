"""Figure 6: lookup latency vs index size, all four structures.

Micro-benchmarks time raw point lookups per structure; the harness test
regenerates the figure's series and asserts the paper's dominance shape.
"""

import pytest

from repro.baselines import BinarySearchIndex, FixedPageIndex, FullIndex
from repro.bench import run_experiment
from repro.core.fiting_tree import FITingTree


@pytest.fixture(scope="module")
def structures(weblogs_keys):
    return {
        "fiting": FITingTree(weblogs_keys, error=256, buffer_capacity=0),
        "fixed": FixedPageIndex(weblogs_keys, page_size=256, buffer_capacity=0),
        "full": FullIndex(weblogs_keys),
        "binary": BinarySearchIndex(weblogs_keys),
    }


class TestLookupSpeed:
    @pytest.mark.parametrize("name", ["fiting", "fixed", "full", "binary"])
    def test_point_lookups(self, benchmark, structures, weblogs_queries, name):
        index = structures[name]
        queries = weblogs_queries[:2_000]

        def run():
            get = index.get
            hits = 0
            for q in queries:
                if get(q) is not None:
                    hits += 1
            return hits

        hits = benchmark(run)
        assert hits == len(queries)

    def test_fiting_bulk_lookup(self, benchmark, structures, weblogs_queries):
        index = structures["fiting"]
        out = benchmark(index.bulk_lookup, weblogs_queries)
        assert len(out) == len(weblogs_queries)


class TestFig6Harness:
    def test_fig6_series(self, benchmark):
        result = benchmark.pedantic(
            run_experiment,
            args=("fig6",),
            kwargs=dict(
                n=150_000, n_queries=5_000, grid=(16, 64, 256, 1024, 4096)
            ),
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        for dataset in ("weblogs", "iot", "maps"):
            rows = [r for r in result.rows if r["dataset"] == dataset]
            fiting = sorted(
                (r for r in rows if r["structure"] == "fiting"),
                key=lambda r: r["size_kb"],
            )
            fixed = sorted(
                (r for r in rows if r["structure"] == "fixed"),
                key=lambda r: r["size_kb"],
            )
            full = next(r for r in rows if r["structure"] == "full")
            binary = next(r for r in rows if r["structure"] == "binary")
            # Latency decreases as the index grows (both sparse structures).
            assert fiting[-1]["modeled_ns"] < fiting[0]["modeled_ns"]
            # Full is the latency floor; binary the zero-size ceiling.
            assert full["modeled_ns"] <= min(r["modeled_ns"] for r in fiting)
            assert binary["modeled_ns"] >= max(r["modeled_ns"] for r in fiting)
            # Dominance at matched latency: the FITing-Tree generally needs
            # no more space than fixed paging for the same latency. (The
            # paper's orders-of-magnitude gap vs *fixed* needs billion-row
            # tables where page counts are huge; at simulation scale the
            # robust claims are dominance here and the large gap vs *full*
            # below.)
            savings = []
            for fx in fixed:
                candidates = [
                    r["size_kb"]
                    for r in fiting
                    if r["modeled_ns"] <= fx["modeled_ns"] * 1.05
                ]
                if candidates:
                    savings.append(fx["size_kb"] / max(min(candidates), 1e-9))
            assert savings, f"{dataset}: fiting never matched fixed latency"
            assert max(savings) >= 1.2, f"{dataset}: no size win: {savings}"
            # Near-full latency at a small fraction of the full index size.
            near_full = [
                r for r in fiting if r["modeled_ns"] <= 3 * full["modeled_ns"]
            ]
            assert near_full, f"{dataset}: fiting never came near full"
            assert min(r["size_kb"] for r in near_full) * 20 < full["size_kb"]
