"""Setup shim: enables legacy editable installs in offline environments.

The environment this reproduction targets has no network access and no
``wheel`` package, so ``pip install -e . --no-build-isolation`` needs the
legacy (setup.py develop) code path. All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
