"""Packaging for the FITing-Tree reproduction.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so legacy editable
installs (``pip install -e . --no-build-isolation``) work in the offline
environments this reproduction targets, where build isolation and the
``wheel`` package are unavailable. The ``test`` extra pins what CI needs
to run the suite with coverage: ``pip install -e .[test]``.
"""

from setuptools import find_packages, setup

setup(
    name="repro-fiting-tree",
    version="0.2.0",
    description=(
        "Reproduction of 'FITing-Tree: A Data-aware Index Structure' "
        "(SIGMOD 2019) plus a sharded, vectorized batch serving engine"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    extras_require={
        "test": [
            "pytest",
            "pytest-cov",
            "hypothesis",
        ],
    },
)
